// Package joinphase implements the task-queue join phase shared by Cbase
// and by CSH's NM-join (§IV-A step 4: "CSH can efficiently join each pair
// of normal partitions... Our implementation parallelizes all the phases
// with multiple CPU threads in the similar fashion as Cbase").
//
// Every non-empty (R partition, S partition) pair becomes a join task in a
// dynamic queue. A worker dequeues a task, builds a hash table over the R
// partition, and probes it with the S partition. Cbase's skew handling is
// included: a task whose S side is much larger than average is broken up —
// the table is built once and the S side is re-enqueued as smaller probe
// sub-tasks.
//
// The hot path carries two output-identical A/B knobs mirroring the
// partitioner's Scatter/Sched pair:
//
//   - Config.Probe selects scalar probing (one S tuple at a time, the seed
//     path) or grouped probing (chainedtable.ProbeGroup: GroupSize chain
//     walks advanced in lock-step so their dependent loads overlap);
//   - Config.Layout selects the chained table or the compact bucket-array
//     layout (chainedtable.LayoutCompact).
//
// Build scratch is recycled through a per-worker chainedtable.Arena, so
// after the first few tasks grow each worker's buffers the steady-state
// join phase allocates nothing per task. Tables handed to probe sub-tasks
// escape their worker and are detached from the arena first.
package joinphase

import (
	"context"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/exec"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Config tunes the join phase.
type Config struct {
	// Threads is the number of workers draining the task queue.
	Threads int
	// SkewFactor: a task whose S partition exceeds SkewFactor times the
	// average S partition size is split into probe sub-tasks. <= 0 disables
	// splitting.
	SkewFactor float64
	// Sched selects the task-queue implementation (default radix.SchedAtomic,
	// the lock-free fetch-add queue; radix.SchedMutex restores the seed's
	// mutex-guarded queue for A/B benchmarks).
	Sched radix.SchedMode
	// Probe selects the probe strategy (default chainedtable.ProbeScalar,
	// the seed's one-probe-at-a-time walk; chainedtable.ProbeGrouped
	// advances GroupSize chain walks in lock-step).
	Probe chainedtable.ProbeMode
	// Layout selects the build-table representation (default
	// chainedtable.LayoutChained, the paper's index-linked chains;
	// chainedtable.LayoutCompact stores buckets contiguously).
	Layout chainedtable.Layout
	// Ctx optionally cancels the phase between join tasks (nil = never).
	// A cancelled run reports Stats.Canceled and its output is partial.
	Ctx context.Context
	// Parts optionally restricts the phase to the listed partition
	// indices (nil = every partition, unless Ranges is set). The
	// co-processing executor uses it to join only the CPU-assigned
	// partitions while the rest run on the simulated GPU. Indices must be
	// valid and duplicate-free; empty partitions in the list are skipped
	// as usual.
	Parts []int
	// Ranges optionally adds probe-restricted tasks: each entry joins the
	// full R partition against only S[Lo:Hi) of that partition. The
	// co-processing executor uses it for a fragmented hot partition — the
	// build side is replicated here while the rest of the probe side runs
	// on the simulated GPU. Ranges must not overlap Parts entries. When
	// Ranges is set and Parts is nil, only the listed ranges run.
	Ranges []ProbeRange
}

// ProbeRange restricts one partition's join to the probe tuples [Lo, Hi).
type ProbeRange struct {
	Part, Lo, Hi int
}

// taskQueue abstracts the two queue variants; the per-task dispatch cost is
// negligible next to building and probing a hash table.
type taskQueue interface {
	Push(task)
	Len() int
	Drain(threads int, fn func(worker int, t task))
	DrainCtx(ctx context.Context, threads int, fn func(worker int, t task)) error
}

// Stats reports what happened inside the join phase.
type Stats struct {
	Tasks         int    // join tasks drained, including probe sub-tasks
	SplitTasks    int    // oversized tasks that were broken up
	MaxChain      int    // longest hash chain / largest bucket across all build tables
	ProbeVisits   uint64 // total bucket entries visited while probing
	MaxTaskOutput uint64 // results produced by the single largest task
	BuildNs       int64  // CPU ns spent building tables, summed across workers
	ProbeNs       int64  // CPU ns spent probing, summed across workers
	Canceled      bool   // Config.Ctx fired before the queue drained
}

type task struct {
	part   int                    // partition index; -1 for a probe sub-task
	lo, hi int                    // probe-range restriction when hi > lo
	table  chainedtable.HashTable // pre-built R table for probe sub-tasks
	sPart  []relation.Tuple       // S tuples to probe for probe sub-tasks
}

// worker holds one thread's output buffer, build arena, emit state and
// stat counters. The emit closures are created once per worker (not per
// task, let alone per probe) so the hot loops never allocate.
type worker struct {
	buf   *outbuf.Buffer
	arena *chainedtable.Arena

	// scalar emit state: the S tuple currently being probed.
	curKey     relation.Key
	curPS      relation.Payload
	emitScalar func(pr relation.Payload)

	// grouped emit state: the task's S side plus a staging batch flushed
	// through outbuf.PushBatch one probe group at a time.
	sSide       []relation.Tuple
	batch       [chainedtable.GroupSize]outbuf.Result
	bn          int
	emitGrouped func(i int, pr relation.Payload)

	maxChain      int
	probeVisits   uint64
	maxTaskOutput uint64
	splits        int
	buildNs       int64
	probeNs       int64
}

// probeScalar probes sSide one tuple at a time (the seed path).
//
//skewlint:hotpath
func (w *worker) probeScalar(table chainedtable.HashTable, sSide []relation.Tuple) {
	for _, ts := range sSide {
		w.curKey, w.curPS = ts.Key, ts.Payload
		w.probeVisits += uint64(table.Probe(ts.Key, w.emitScalar))
	}
}

// probeGrouped probes sSide through the lock-step group walk, staging
// matches in w.batch and emitting them a batch at a time.
//
//skewlint:hotpath
func (w *worker) probeGrouped(table chainedtable.HashTable, sSide []relation.Tuple) {
	w.sSide = sSide
	w.probeVisits += uint64(table.ProbeGroup(sSide, w.emitGrouped))
	if w.bn > 0 {
		w.buf.PushBatch(w.batch[:w.bn])
		w.bn = 0
	}
	w.sSide = nil
}

// stage records one grouped-probe match in the staging batch, flushing a
// full batch through the buffer's batch fast path.
//
//skewlint:hotpath
func (w *worker) stage(i int, pr relation.Payload) {
	s := &w.sSide[i]
	w.batch[w.bn] = outbuf.Result{Key: s.Key, PayloadR: pr, PayloadS: s.Payload}
	w.bn++
	if w.bn == len(w.batch) {
		w.buf.PushBatch(w.batch[:])
		w.bn = 0
	}
}

// runner carries the per-phase constants every task shares.
type runner struct {
	pr, ps         *radix.Partitioned
	probe          chainedtable.ProbeMode
	layout         chainedtable.Layout
	avg            int
	splitThreshold int
	q              taskQueue
}

// doTask executes one join task on worker w: build (arena-recycled, timed),
// split if oversized, probe (timed). Deliberately not a lint hot path —
// the phase timers live here, bracketing the marked helpers that are.
// Build and probe are timed with the per-thread CPU clock, not wall time:
// on an oversubscribed host (co-processing runs GPU-sim host workers
// concurrently) wall deltas absorb other threads' time slices and inflate
// the busy measurement the cost model calibrates against. exec.Parallel
// pins each drain worker to its OS thread, so the deltas are well-defined.
func (r *runner) doTask(w *worker, t task) {
	var table chainedtable.HashTable
	var sSide []relation.Tuple

	if t.part >= 0 {
		t0 := exec.ThreadCPUNs()
		table = w.arena.Build(r.pr.Part(t.part), r.layout)
		w.buildNs += exec.ThreadCPUNs() - t0
		if mc := table.MaxChain(); mc > w.maxChain {
			w.maxChain = mc
		}
		sPart := r.ps.Part(t.part)
		if t.hi > t.lo {
			// Probe-range task: the replicated build probes only its
			// fragment of S. The oversized-split below still applies, so a
			// large fragment fans out into sub-tasks sharing one table.
			sPart = sPart[t.lo:t.hi]
		}
		if r.splitThreshold > 0 && len(sPart) > r.splitThreshold {
			w.splits++
			// The table escapes to whichever workers drain the sub-tasks;
			// detach it so the arena's next build cannot clobber it.
			w.arena.Detach()
			for lo := r.avg; lo < len(sPart); lo += r.avg {
				hi := lo + r.avg
				if hi > len(sPart) {
					hi = len(sPart)
				}
				r.q.Push(task{part: -1, table: table, sPart: sPart[lo:hi]})
			}
			sSide = sPart[:r.avg]
		} else {
			sSide = sPart
		}
	} else {
		table = t.table
		sSide = t.sPart
	}

	before := w.buf.Count()
	t1 := exec.ThreadCPUNs()
	if r.probe == chainedtable.ProbeGrouped {
		w.probeGrouped(table, sSide)
	} else {
		w.probeScalar(table, sSide)
	}
	w.probeNs += exec.ThreadCPUNs() - t1
	if out := w.buf.Count() - before; out > w.maxTaskOutput {
		w.maxTaskOutput = out
	}
}

// Run joins every partition pair of pr and ps, emitting results into the
// per-worker buffers bufs (len must be >= cfg.Threads).
func Run(pr, ps *radix.Partitioned, cfg Config, bufs []*outbuf.Buffer) Stats {
	if cfg.Threads <= 0 {
		cfg.Threads = exec.DefaultThreads()
	}
	fanout := pr.Fanout()
	avg := 1
	if fanout > 0 {
		avg = (ps.Total() + fanout - 1) / fanout
		if avg == 0 {
			avg = 1
		}
	}
	splitThreshold := 0
	if cfg.SkewFactor > 0 {
		splitThreshold = int(cfg.SkewFactor * float64(avg))
	}

	parts := cfg.Parts
	if parts == nil && cfg.Ranges == nil {
		parts = make([]int, fanout)
		for p := range parts {
			parts[p] = p
		}
	}
	tasks := make([]task, 0, len(parts)+len(cfg.Ranges))
	for _, p := range parts {
		if pr.Size(p) == 0 || ps.Size(p) == 0 {
			continue
		}
		tasks = append(tasks, task{part: p})
	}
	for _, pr2 := range cfg.Ranges {
		if pr.Size(pr2.Part) == 0 || pr2.Hi <= pr2.Lo {
			continue
		}
		tasks = append(tasks, task{part: pr2.Part, lo: pr2.Lo, hi: pr2.Hi})
	}
	var q taskQueue
	if cfg.Sched == radix.SchedMutex {
		q = exec.NewMutexQueue(tasks)
	} else {
		q = exec.NewQueue(tasks)
	}

	r := &runner{
		pr: pr, ps: ps,
		probe: cfg.Probe, layout: cfg.Layout,
		avg: avg, splitThreshold: splitThreshold,
		q: q,
	}
	ws := make([]worker, cfg.Threads)
	for i := range ws {
		w := &ws[i]
		w.buf = bufs[i]
		w.arena = &chainedtable.Arena{}
		w.emitScalar = func(pr relation.Payload) { w.buf.Push(w.curKey, pr, w.curPS) }
		w.emitGrouped = w.stage
	}

	var drainErr error
	fn := func(wi int, t task) { r.doTask(&ws[wi], t) }
	if cfg.Ctx != nil {
		drainErr = q.DrainCtx(cfg.Ctx, cfg.Threads, fn)
	} else {
		q.Drain(cfg.Threads, fn)
	}

	var st Stats
	st.Canceled = drainErr != nil
	st.Tasks = q.Len()
	for i := range ws {
		w := &ws[i]
		if w.maxChain > st.MaxChain {
			st.MaxChain = w.maxChain
		}
		st.ProbeVisits += w.probeVisits
		if w.maxTaskOutput > st.MaxTaskOutput {
			st.MaxTaskOutput = w.maxTaskOutput
		}
		st.SplitTasks += w.splits
		st.BuildNs += w.buildNs
		st.ProbeNs += w.probeNs
	}
	return st
}
