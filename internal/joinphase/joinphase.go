// Package joinphase implements the task-queue join phase shared by Cbase
// and by CSH's NM-join (§IV-A step 4: "CSH can efficiently join each pair
// of normal partitions... Our implementation parallelizes all the phases
// with multiple CPU threads in the similar fashion as Cbase").
//
// Every non-empty (R partition, S partition) pair becomes a join task in a
// dynamic queue. A worker dequeues a task, builds a chained hash table over
// the R partition, and probes it with the S partition. Cbase's skew
// handling is included: a task whose S side is much larger than average is
// broken up — the table is built once and the S side is re-enqueued as
// smaller probe sub-tasks.
package joinphase

import (
	"context"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/exec"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Config tunes the join phase.
type Config struct {
	// Threads is the number of workers draining the task queue.
	Threads int
	// SkewFactor: a task whose S partition exceeds SkewFactor times the
	// average S partition size is split into probe sub-tasks. <= 0 disables
	// splitting.
	SkewFactor float64
	// Sched selects the task-queue implementation (default radix.SchedAtomic,
	// the lock-free fetch-add queue; radix.SchedMutex restores the seed's
	// mutex-guarded queue for A/B benchmarks).
	Sched radix.SchedMode
	// Ctx optionally cancels the phase between join tasks (nil = never).
	// A cancelled run reports Stats.Canceled and its output is partial.
	Ctx context.Context
}

// taskQueue abstracts the two queue variants; the per-task dispatch cost is
// negligible next to building and probing a hash table.
type taskQueue interface {
	Push(task)
	Len() int
	Drain(threads int, fn func(worker int, t task))
	DrainCtx(ctx context.Context, threads int, fn func(worker int, t task)) error
}

// Stats reports what happened inside the join phase.
type Stats struct {
	Tasks         int    // join tasks drained, including probe sub-tasks
	SplitTasks    int    // oversized tasks that were broken up
	MaxChain      int    // longest hash chain across all build tables
	ProbeVisits   uint64 // total chain nodes visited while probing
	MaxTaskOutput uint64 // results produced by the single largest task
	Canceled      bool   // Config.Ctx fired before the queue drained
}

type task struct {
	part  int                 // partition index; -1 for a probe sub-task
	table *chainedtable.Table // pre-built R table for probe sub-tasks
	sPart []relation.Tuple    // S tuples to probe for probe sub-tasks
}

// Run joins every partition pair of pr and ps, emitting results into the
// per-worker buffers bufs (len must be >= cfg.Threads).
//
//skewlint:hotpath
func Run(pr, ps *radix.Partitioned, cfg Config, bufs []*outbuf.Buffer) Stats {
	if cfg.Threads <= 0 {
		cfg.Threads = exec.DefaultThreads()
	}
	fanout := pr.Fanout()
	avg := 1
	if fanout > 0 {
		avg = (ps.Total() + fanout - 1) / fanout
		if avg == 0 {
			avg = 1
		}
	}
	splitThreshold := 0
	if cfg.SkewFactor > 0 {
		splitThreshold = int(cfg.SkewFactor * float64(avg))
	}

	tasks := make([]task, 0, fanout)
	for p := 0; p < fanout; p++ {
		if pr.Size(p) == 0 || ps.Size(p) == 0 {
			continue
		}
		tasks = append(tasks, task{part: p})
	}
	var q taskQueue
	if cfg.Sched == radix.SchedMutex {
		q = exec.NewMutexQueue(tasks)
	} else {
		q = exec.NewQueue(tasks)
	}

	type workerStat struct {
		maxChain      int
		probeVisits   uint64
		maxTaskOutput uint64
		splits        int
	}
	ws := make([]workerStat, cfg.Threads)

	var drainErr error
	drain := func(fn func(w int, t task)) {
		if cfg.Ctx != nil {
			drainErr = q.DrainCtx(cfg.Ctx, cfg.Threads, fn)
		} else {
			q.Drain(cfg.Threads, fn)
		}
	}
	drain(func(w int, t task) {
		buf := bufs[w]
		stat := &ws[w]
		var table *chainedtable.Table
		var sSide []relation.Tuple

		if t.part >= 0 {
			table = chainedtable.Build(pr.Part(t.part))
			if mc := table.MaxChain(); mc > stat.maxChain {
				stat.maxChain = mc
			}
			sPart := ps.Part(t.part)
			if splitThreshold > 0 && len(sPart) > splitThreshold {
				stat.splits++
				for lo := avg; lo < len(sPart); lo += avg {
					hi := lo + avg
					if hi > len(sPart) {
						hi = len(sPart)
					}
					q.Push(task{part: -1, table: table, sPart: sPart[lo:hi]})
				}
				sSide = sPart[:avg]
			} else {
				sSide = sPart
			}
		} else {
			table = t.table
			sSide = t.sPart
		}

		before := buf.Count()
		// One emit closure per task (not per probe) keeps the hot loop free
		// of per-tuple closure allocation.
		var curKey relation.Key
		var curPS relation.Payload
		emit := func(p relation.Payload) { buf.Push(curKey, p, curPS) }
		for _, ts := range sSide {
			curKey, curPS = ts.Key, ts.Payload
			stat.probeVisits += uint64(table.Probe(ts.Key, emit))
		}
		if out := buf.Count() - before; out > stat.maxTaskOutput {
			stat.maxTaskOutput = out
		}
	})

	var st Stats
	st.Canceled = drainErr != nil
	st.Tasks = q.Len()
	for _, s := range ws {
		if s.maxChain > st.MaxChain {
			st.MaxChain = s.maxChain
		}
		st.ProbeVisits += s.probeVisits
		if s.maxTaskOutput > st.MaxTaskOutput {
			st.MaxTaskOutput = s.maxTaskOutput
		}
		st.SplitTasks += s.splits
	}
	return st
}
