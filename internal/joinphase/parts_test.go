package joinphase

import (
	"testing"

	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/zipf"
)

// runParts joins only the listed partitions and returns the summary.
func runParts(t *testing.T, pr, ps *radix.Partitioned, parts []int) outbuf.Summary {
	t.Helper()
	const threads = 3
	bufs := make([]*outbuf.Buffer, threads)
	for i := range bufs {
		bufs[i] = outbuf.New(0)
	}
	Run(pr, ps, Config{Threads: threads, SkewFactor: 4, Parts: parts}, bufs)
	return outbuf.Summarize(bufs)
}

func TestPartsSubsetsUnionToFullRun(t *testing.T) {
	g, err := zipf.New(zipf.Config{Theta: 1.0, Universe: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(20000)
	want := oracle.Expected(r, s)
	rcfg := radix.Config{Threads: 3, Bits1: 4, Bits2: 2}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)

	// Split the fanout into evens and odds: the two subset runs must add
	// up exactly to the full run (summaries are additive), which is the
	// property the co-processing merge depends on.
	var evens, odds []int
	for p := 0; p < pr.Fanout(); p++ {
		if p%2 == 0 {
			evens = append(evens, p)
		} else {
			odds = append(odds, p)
		}
	}
	a := runParts(t, pr, ps, evens)
	b := runParts(t, pr, ps, odds)
	sum := outbuf.Summary{Count: a.Count + b.Count, Checksum: a.Checksum + b.Checksum}
	if sum != want {
		t.Fatalf("evens %+v + odds %+v = %+v, want %+v", a, b, sum, want)
	}

	full := runParts(t, pr, ps, nil)
	if full != want {
		t.Fatalf("nil Parts run %+v, want %+v", full, want)
	}
}

func TestPartsEmptyListJoinsNothing(t *testing.T) {
	g, err := zipf.New(zipf.Config{Theta: 0, Universe: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(1000)
	rcfg := radix.Config{Threads: 2, Bits1: 3, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	got := runParts(t, pr, ps, []int{})
	if got.Count != 0 {
		t.Fatalf("empty Parts produced %d results", got.Count)
	}
}
