package joinphase

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"skewjoin/internal/chainedtable"
	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/zipf"
)

// collectRun executes the join phase with full output collection: every
// worker's ring is drained through a Flush collector, so the returned slice
// holds every emitted result (not just the overwriting ring tail).
func collectRun(t *testing.T, pr, ps *radix.Partitioned, cfg Config) ([]outbuf.Result, outbuf.Summary, Stats) {
	t.Helper()
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	bufs := make([]*outbuf.Buffer, cfg.Threads)
	collected := make([][]outbuf.Result, cfg.Threads)
	for i := range bufs {
		bufs[i] = outbuf.New(0)
		w := i
		bufs[i].SetFlush(func(batch []outbuf.Result) {
			collected[w] = append(collected[w], batch...)
		})
	}
	st := Run(pr, ps, cfg, bufs)
	var all []outbuf.Result
	for i, b := range bufs {
		b.Flush()
		all = append(all, collected[i]...)
	}
	return all, outbuf.Summarize(bufs), st
}

func sortResults(rs []outbuf.Result) {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Key != rs[b].Key {
			return rs[a].Key < rs[b].Key
		}
		if rs[a].PayloadR != rs[b].PayloadR {
			return rs[a].PayloadR < rs[b].PayloadR
		}
		return rs[a].PayloadS < rs[b].PayloadS
	})
}

// TestJoinVariantsByteIdentical pins the overhaul's contract: every
// (Probe × Layout) combination, over skewed and uniform inputs, with and
// without task splitting, must produce byte-identical sorted output to the
// seed scalar/chained path — not merely a matching checksum.
func TestJoinVariantsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name       string
		theta      float64
		skewFactor float64
	}{
		{"uniform", 0, 4},
		{"skewed", 1.0, 4},
		{"skewed-nosplit", 1.0, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 10000
			g := zipf.MustNew(zipf.Config{Theta: tc.theta, Universe: n, Seed: 42})
			r, s := g.Pair(n)
			want := oracle.Expected(r, s)
			rcfg := radix.Config{Threads: 4, Bits1: 5, Bits2: 2}
			pr := radix.Partition(r.Tuples, rcfg, nil)
			ps := radix.Partition(s.Tuples, rcfg, nil)

			base := Config{Threads: 4, SkewFactor: tc.skewFactor}
			seed, seedSum, _ := collectRun(t, pr, ps, base)
			if seedSum != want {
				t.Fatalf("seed path summary %+v, oracle %+v", seedSum, want)
			}
			sortResults(seed)

			for _, probe := range []chainedtable.ProbeMode{chainedtable.ProbeScalar, chainedtable.ProbeGrouped} {
				for _, layout := range []chainedtable.Layout{chainedtable.LayoutChained, chainedtable.LayoutCompact} {
					if probe == chainedtable.ProbeScalar && layout == chainedtable.LayoutChained {
						continue // that is the seed path itself
					}
					cfg := base
					cfg.Probe = probe
					cfg.Layout = layout
					name := fmt.Sprintf("%s/%s", probe, layout)
					got, gotSum, st := collectRun(t, pr, ps, cfg)
					if gotSum != want {
						t.Errorf("%s: summary %+v, oracle %+v", name, gotSum, want)
					}
					if len(got) != len(seed) {
						t.Fatalf("%s: %d results, seed %d", name, len(got), len(seed))
					}
					sortResults(got)
					for i := range got {
						if got[i] != seed[i] {
							t.Fatalf("%s: result %d = %+v, seed %+v", name, i, got[i], seed[i])
						}
					}
					if st.ProbeVisits == 0 {
						t.Errorf("%s: zero probe visits", name)
					}
				}
			}
		})
	}
}

// TestStatsTimingSplit checks the BuildNs/ProbeNs split: both sides are
// populated, bounded by the phase's wall-clock budget across workers, and
// monotone in input size.
func TestStatsTimingSplit(t *testing.T) {
	runSized := func(n int) Stats {
		g := zipf.MustNew(zipf.Config{Theta: 0.8, Universe: n, Seed: 7})
		r, s := g.Pair(n)
		rcfg := radix.Config{Threads: 2, Bits1: 4, Bits2: 2}
		pr := radix.Partition(r.Tuples, rcfg, nil)
		ps := radix.Partition(s.Tuples, rcfg, nil)
		bufs := []*outbuf.Buffer{outbuf.New(0), outbuf.New(0)}
		start := time.Now()
		st := Run(pr, ps, Config{Threads: 2, SkewFactor: 4}, bufs)
		wall := time.Since(start).Nanoseconds()
		if st.BuildNs <= 0 || st.ProbeNs <= 0 {
			t.Fatalf("n=%d: BuildNs=%d ProbeNs=%d, want both positive", n, st.BuildNs, st.ProbeNs)
		}
		// Per-worker CPU time cannot exceed the phase wall clock, so the
		// sums are bounded by threads × wall (with slack for timer grain).
		if budget := 2*wall + int64(time.Millisecond); st.BuildNs+st.ProbeNs > budget {
			t.Errorf("n=%d: BuildNs+ProbeNs = %d exceeds %d (2×wall+grain)", n, st.BuildNs+st.ProbeNs, budget)
		}
		return st
	}
	small := runSized(2000)
	large := runSized(64000)
	if large.BuildNs <= small.BuildNs {
		t.Errorf("BuildNs not monotone in input size: %d (64k tuples) <= %d (2k tuples)", large.BuildNs, small.BuildNs)
	}
	if large.ProbeNs <= small.ProbeNs {
		t.Errorf("ProbeNs not monotone in input size: %d (64k tuples) <= %d (2k tuples)", large.ProbeNs, small.ProbeNs)
	}
}

// TestSplitTablesSurviveArenaReuse pins the Detach contract end to end: at
// high skew with splitting enabled, tables shared by probe sub-tasks must
// keep answering correctly while their origin worker's arena builds over
// later tasks. A miss here corrupts results only under load, which is why
// the byte-identical test above also covers the split path.
func TestSplitTablesSurviveArenaReuse(t *testing.T) {
	const n = 30000
	g := zipf.MustNew(zipf.Config{Theta: 1.0, Universe: n, Seed: 9})
	r, s := g.Pair(n)
	want := oracle.Expected(r, s)
	// Single thread forces the owner to build later tasks before the
	// sub-tasks it enqueued are drained — the worst case for scratch reuse.
	rcfg := radix.Config{Threads: 1, Bits1: 5, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	for _, layout := range []chainedtable.Layout{chainedtable.LayoutChained, chainedtable.LayoutCompact} {
		bufs := []*outbuf.Buffer{outbuf.New(0)}
		st := Run(pr, ps, Config{Threads: 1, SkewFactor: 2, Layout: layout}, bufs)
		if st.SplitTasks == 0 {
			t.Fatalf("%s: no splits at zipf 1.0", layout)
		}
		if got := outbuf.Summarize(bufs); got != want {
			t.Errorf("%s: summary %+v, oracle %+v", layout, got, want)
		}
	}
}

// TestSteadyStateAllocsPerTask quantifies the arena payoff inside the real
// phase: the seed allocated ≥3 objects per task (table struct + heads +
// next); with per-worker arenas, amortised allocations per task must drop
// below one (setup + high-water growth only).
func TestSteadyStateAllocsPerTask(t *testing.T) {
	const n = 40000
	g := zipf.MustNew(zipf.Config{Theta: 0.5, Universe: n, Seed: 5})
	r, s := g.Pair(n)
	rcfg := radix.Config{Threads: 1, Bits1: 8, Bits2: 0}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	bufs := []*outbuf.Buffer{outbuf.New(0)}

	var tasks int
	for _, probe := range []chainedtable.ProbeMode{chainedtable.ProbeScalar, chainedtable.ProbeGrouped} {
		cfg := Config{Threads: 1, Probe: probe}
		allocs := testing.AllocsPerRun(5, func() {
			st := Run(pr, ps, cfg, bufs)
			tasks = st.Tasks
		})
		if tasks == 0 {
			t.Fatal("no tasks ran")
		}
		if perTask := allocs / float64(tasks); perTask >= 1 {
			t.Errorf("%s: %.2f allocs/task over %d tasks (total %.0f), want < 1",
				probe, perTask, tasks, allocs)
		}
	}
}

// BenchmarkJoinPhase drives the full phase across the knob grid on a skewed
// and a uniform workload; allocs/op makes the arena's task amortisation
// visible next to the probe-mode timings.
func BenchmarkJoinPhase(b *testing.B) {
	const n = 1 << 16
	for _, theta := range []float64{0, 1.0} {
		g := zipf.MustNew(zipf.Config{Theta: theta, Universe: n, Seed: 3})
		r, s := g.Pair(n)
		rcfg := radix.Config{Threads: 1, Bits1: 6, Bits2: 2}
		pr := radix.Partition(r.Tuples, rcfg, nil)
		ps := radix.Partition(s.Tuples, rcfg, nil)
		bufs := []*outbuf.Buffer{outbuf.New(0)}
		for _, probe := range []chainedtable.ProbeMode{chainedtable.ProbeScalar, chainedtable.ProbeGrouped} {
			for _, layout := range []chainedtable.Layout{chainedtable.LayoutChained, chainedtable.LayoutCompact} {
				cfg := Config{Threads: 1, SkewFactor: 4, Probe: probe, Layout: layout}
				b.Run(fmt.Sprintf("zipf=%g/%s/%s", theta, probe, layout), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						Run(pr, ps, cfg, bufs)
					}
				})
			}
		}
	}
}
