package joinphase

import (
	"testing"

	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/zipf"
)

func run(t *testing.T, n int, theta float64, threads int, skewFactor float64, rcfg radix.Config) (outbuf.Summary, Stats, outbuf.Summary) {
	t.Helper()
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r, s := g.Pair(n)
	want := oracle.Expected(r, s)
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)
	bufs := make([]*outbuf.Buffer, threads)
	for i := range bufs {
		bufs[i] = outbuf.New(0)
	}
	st := Run(pr, ps, Config{Threads: threads, SkewFactor: skewFactor}, bufs)
	return outbuf.Summarize(bufs), st, want
}

func TestRunMatchesOracle(t *testing.T) {
	for _, theta := range []float64{0, 0.6, 1.0} {
		got, _, want := run(t, 20000, theta, 4, 4, radix.Config{Threads: 4, Bits1: 5, Bits2: 3})
		if got != want {
			t.Errorf("theta=%g: got %+v, want %+v", theta, got, want)
		}
	}
}

func TestSkewedPartitionTriggersSplits(t *testing.T) {
	// At zipf 1.0 with fanout 32, the partition holding the top key dwarfs
	// the average, so its join task must be broken up; correctness must
	// hold regardless.
	got, st, want := run(t, 20000, 1.0, 3, 2, radix.Config{Threads: 3, Bits1: 5, Bits2: 0})
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if st.SplitTasks == 0 {
		t.Error("skewed run should have split tasks")
	}
	if st.Tasks <= st.SplitTasks {
		t.Errorf("tasks %d should exceed splits %d (sub-tasks enqueued)", st.Tasks, st.SplitTasks)
	}
}

func TestSplitTasksPreserveResults(t *testing.T) {
	// With and without splitting must agree bit-for-bit.
	a, _, want := run(t, 15000, 0.95, 4, 2, radix.Config{Threads: 4, Bits1: 4, Bits2: 2})
	b, stb, _ := run(t, 15000, 0.95, 4, -1, radix.Config{Threads: 4, Bits1: 4, Bits2: 2})
	if a != b || a != want {
		t.Errorf("split %+v vs unsplit %+v vs want %+v", a, b, want)
	}
	if stb.SplitTasks != 0 {
		t.Errorf("splitting disabled but %d splits", stb.SplitTasks)
	}
}

func TestEmptyPartitionsSkipped(t *testing.T) {
	// Tiny input with large fanout: most partitions are empty; no tasks
	// for them.
	_, st, _ := run(t, 64, 0, 2, 4, radix.Config{Threads: 2, Bits1: 6, Bits2: 4})
	if st.Tasks > 64 {
		t.Errorf("%d tasks for 64 tuples", st.Tasks)
	}
}

func TestMaxTaskOutputTracksSkew(t *testing.T) {
	_, uniform, _ := run(t, 30000, 0, 2, 4, radix.Config{Threads: 2, Bits1: 5, Bits2: 3})
	_, skewed, _ := run(t, 30000, 1.0, 2, 4, radix.Config{Threads: 2, Bits1: 5, Bits2: 3})
	if skewed.MaxTaskOutput <= 4*uniform.MaxTaskOutput {
		t.Errorf("skewed MaxTaskOutput %d should dwarf uniform %d",
			skewed.MaxTaskOutput, uniform.MaxTaskOutput)
	}
	if skewed.MaxChain <= uniform.MaxChain {
		t.Errorf("skewed MaxChain %d should exceed uniform %d", skewed.MaxChain, uniform.MaxChain)
	}
}
