//go:build sanitize

// Package sanitize provides build-tag-gated runtime invariant checks for
// the join engine's hot data structures: chain-cycle detection in the
// chained hash tables, partition-fanout and scatter-cursor bounds checks
// in the radix partitioner, and ring-geometry checks in the output
// buffers.
//
// Without the `sanitize` build tag, Enabled is a false constant and every
// check sits behind `if sanitize.Enabled { ... }`, so the compiler
// eliminates the checks entirely — the normal build pays nothing. With
// `-tags sanitize` (see `make test-sanitize`) the checks compile in and a
// violated invariant aborts the run with a diagnostic panic instead of
// corrupting output or looping forever.
package sanitize

import "fmt"

// Enabled reports whether the sanitize build tag is active. It is a
// constant so that unsanitized builds dead-code-eliminate the checks.
const Enabled = true

// Failf reports a violated invariant and aborts via panic. The panic is
// deliberate: a broken structural invariant means in-memory state is
// already corrupt, and continuing would turn a loud failure into silent
// wrong answers.
func Failf(format string, args ...any) {
	panic("sanitize: " + fmt.Sprintf(format, args...))
}
