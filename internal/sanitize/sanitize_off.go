//go:build !sanitize

package sanitize

// Enabled is false without the sanitize build tag; checks guarded by it
// are dead code the compiler removes.
const Enabled = false

// Failf is a no-op without the sanitize build tag. It is never reached:
// call sites guard with `if sanitize.Enabled`, so both the call and its
// argument evaluation are eliminated.
func Failf(format string, args ...any) {
	_ = format
	_ = args
}
