// Query pipeline: the paper's volcano consumption model end-to-end.
//
// The paper motivates its output-buffer design with volcano-style
// processing: "the join output is often consumed by an upper level query
// operator" (§III). This example runs a small analytical query
//
//	SELECT SUM(r.payload + s.payload), TOP-5 keys BY output count
//	FROM   (SELECT * FROM R WHERE payload % 4 != 0) r
//	JOIN   S ON r.key = s.key
//
// as a pipeline: scan→filter feeds the skew-conscious join, whose output
// rings are drained batch-by-batch into a SUM aggregate and a heavy-hitter
// tracker — no join output is ever materialised.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"skewjoin"
	"skewjoin/internal/volcano"
)

func main() {
	const n = 150_000
	r, s, err := skewjoin.GenerateZipfPair(n, 0.9, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Scan → filter: drop a quarter of R before the join.
	filtered := volcano.NewScan(r).
		Filter(func(t skewjoin.Tuple) bool { return t.Payload%4 != 0 }).
		Materialize()
	fmt.Printf("R: %d tuples after filter (from %d)\n", filtered.Len(), r.Len())

	// Upper operators: a SUM aggregate and a top-5 heavy-hitter tracker,
	// one instance per worker, merged after the join.
	sumExpr := func(res skewjoin.JoinResult) uint64 {
		return uint64(res.PayloadR) + uint64(res.PayloadS)
	}
	sum := volcano.NewSum(sumExpr)
	top := volcano.NewTopKeys(5)
	groups := volcano.NewGroupSum(func(res skewjoin.JoinResult) uint64 { return 1 })
	sumFactory, collectSum := volcano.Sink(sum, func() volcano.Consumer { return volcano.NewSum(sumExpr) })
	topFactory, collectTop := volcano.Sink(top, func() volcano.Consumer { return volcano.NewTopKeys(5) })
	grpFactory, collectGrp := volcano.Sink(groups, func() volcano.Consumer {
		return volcano.NewGroupSum(func(res skewjoin.JoinResult) uint64 { return 1 })
	})

	res, err := skewjoin.Join(skewjoin.CSH, filtered, s, &skewjoin.Options{
		Consumer: func(worker int) skewjoin.ResultConsumer {
			consumeSum := sumFactory(worker)
			consumeTop := topFactory(worker)
			consumeGrp := grpFactory(worker)
			return func(batch []skewjoin.JoinResult) {
				consumeSum(batch)
				consumeTop(batch)
				consumeGrp(batch)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	collectSum()
	collectTop()
	collectGrp()

	fmt.Printf("join produced %d rows in %v (CSH)\n", res.Matches, res.Total)
	fmt.Printf("SUM(r.payload + s.payload) = %d over %d rows\n", sum.Sum, sum.Rows)
	if sum.Rows != res.Matches {
		log.Fatalf("consumer saw %d rows but the join reported %d", sum.Rows, res.Matches)
	}
	fmt.Printf("GROUP BY key produced %d groups\n", len(groups.Groups))
	fmt.Println("top output keys by join-result count:")
	for _, kw := range top.Heaviest() {
		fmt.Printf("  key %-12d ~%d results (exact: %d)\n", kw.Key, kw.Weight, groups.Groups[kw.Key])
	}
	fmt.Println("\nEvery batch was consumed from the overwriting output ring —")
	fmt.Println("the full join result never existed in memory at once.")
}
