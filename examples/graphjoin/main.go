// Graph two-hop join: the workload the paper's introduction motivates.
//
// Real-world graphs have power-law degree distributions — a few hub
// vertices touch millions of edges. Counting length-2 paths (a ⋈ of the
// edge table with itself on dst = src) therefore joins on highly skewed
// keys: every (in-edge of hub, out-edge of hub) pair is one result.
//
// This example builds a power-law random graph, expresses the two-hop count
// as a hash join, and compares the baseline radix join (Cbase) against the
// skew-conscious CSH — the hub vertices are exactly what CSH's sampling
// detects.
//
//	go run ./examples/graphjoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"skewjoin"
)

const (
	vertices = 60_000
	edges    = 240_000
	zipf     = 0.85 // power-law exponent of the degree distribution
	seed     = 7
)

func main() {
	// Build an edge list whose endpoints follow a power-law: endpoint
	// popularity is zipf-distributed over the vertex set. GenerateZipf
	// with a shared (seed, theta) pair draws sources and destinations from
	// the same vertex universe, so hubs are hubs on both sides.
	srcCol, err := skewjoin.GenerateZipf(edges, zipf, seed, 1)
	if err != nil {
		log.Fatal(err)
	}
	dstCol, err := skewjoin.GenerateZipf(edges, zipf, seed, 2)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	type edge struct{ src, dst skewjoin.Key }
	graph := make([]edge, edges)
	for i := range graph {
		graph[i] = edge{src: srcCol.Tuples[i].Key, dst: dstCol.Tuples[rng.Intn(edges)].Key}
	}

	// R: edges keyed by destination (payload = edge id).
	// S: edges keyed by source.
	// R ⋈ S on R.dst = S.src enumerates all length-2 paths a→b→c.
	rKeys := make([]skewjoin.Key, edges)
	sKeys := make([]skewjoin.Key, edges)
	ids := make([]skewjoin.Payload, edges)
	for i, e := range graph {
		rKeys[i] = e.dst
		sKeys[i] = e.src
		ids[i] = skewjoin.Payload(i)
	}
	r := skewjoin.NewRelation(rKeys, ids)
	s := skewjoin.NewRelation(sKeys, ids)

	hub := skewjoin.Stats(r)
	fmt.Printf("graph: %d vertices (universe), %d edges\n", vertices, edges)
	fmt.Printf("hub vertex %d has in-degree %d (%.2f%% of all edges)\n\n",
		hub.MaxKey, hub.MaxKeyFreq, 100*float64(hub.MaxKeyFreq)/float64(edges))

	want := skewjoin.Expected(r, s)
	fmt.Printf("length-2 paths: %d\n\n", want.Matches)

	for _, alg := range []skewjoin.Algorithm{skewjoin.Cbase, skewjoin.CSH} {
		res, err := skewjoin.Join(alg, r, s, nil)
		if err != nil {
			log.Fatal(err)
		}
		if res.Summary() != want {
			log.Fatalf("%s: wrong result %+v, want %+v", alg, res.Summary(), want)
		}
		fmt.Printf("%-8s total %v\n", res.Algorithm, res.Total)
		for _, p := range res.Phases {
			fmt.Printf("         %-10s %v\n", p.Name, p.Duration)
		}
	}
	fmt.Println("\nCSH's sampling finds the hubs and joins their edges during the")
	fmt.Println("partition phase; only low-degree vertices reach the NM-join.")
}
