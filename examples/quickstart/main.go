// Quickstart: generate the paper's skewed workload, run the two
// skew-conscious joins and their baselines, and verify every result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"skewjoin"
)

func main() {
	// Two 200K-tuple tables whose join keys follow a zipf(0.9)
	// distribution drawn from a shared key universe — the paper's
	// high-skew workload (§V-A).
	const n = 200_000
	r, s, err := skewjoin.GenerateZipfPair(n, 0.9, 42)
	if err != nil {
		log.Fatal(err)
	}

	st := skewjoin.Stats(r)
	fmt.Printf("R: %d tuples, %d distinct keys; the most popular key appears %d times (%.1f%%)\n",
		st.Tuples, st.DistinctKeys, st.MaxKeyFreq, 100*float64(st.MaxKeyFreq)/float64(st.Tuples))

	want := skewjoin.Expected(r, s)
	fmt.Printf("expected join output: %d tuples\n\n", want.Matches)

	for _, alg := range skewjoin.Algorithms() {
		res, err := skewjoin.Join(alg, r, s, nil)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if res.Summary() != want {
			status = "MISMATCH"
		}
		kind := "wall-clock"
		if res.Modelled {
			kind = "modelled GPU"
		}
		fmt.Printf("%-10s %12v (%s)  results=%d  verify=%s\n",
			res.Algorithm, res.Total, kind, res.Matches, status)
		for _, p := range res.Phases {
			fmt.Printf("             %-10s %v\n", p.Name, p.Duration)
		}
	}
}
