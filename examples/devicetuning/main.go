// Device tuning: how GPU shared-memory capacity moves the point where
// skew handling starts to pay off.
//
// GSH marks a partition "large" when it outgrows the shared-memory budget
// (§IV-B step 2), so the zipf factor at which its skew path engages — and
// at which it starts beating Gbase — depends on the ratio between the top
// key's frequency and the partition capacity. The paper runs 32M-tuple
// tables against 4K-tuple partitions; at this example's reduced scale, the
// same ratio is reproduced by shrinking the simulated shared memory.
//
//	go run ./examples/devicetuning
package main

import (
	"fmt"
	"log"

	"skewjoin"
)

func main() {
	const n = 100_000
	fmt.Println("GSH vs Gbase total (modelled) across zipf, for two simulated devices")
	fmt.Println()

	for _, dev := range []struct {
		name string
		cfg  skewjoin.DeviceConfig
	}{
		{"A100-like (64 KiB shared memory/block)", skewjoin.DeviceConfig{}},
		{"paper-ratio (8 KiB shared memory/block)", skewjoin.DeviceConfig{SharedMemBytes: 8 << 10}},
	} {
		fmt.Println(dev.name)
		fmt.Printf("  %-6s %14s %14s %9s\n", "zipf", "Gbase", "GSH", "speedup")
		for _, z := range []float64{0.0, 0.3, 0.5, 0.7, 0.9, 1.0} {
			r, s, err := skewjoin.GenerateZipfPair(n, z, 42)
			if err != nil {
				log.Fatal(err)
			}
			opts := &skewjoin.Options{Device: dev.cfg}
			gb, err := skewjoin.Join(skewjoin.Gbase, r, s, opts)
			if err != nil {
				log.Fatal(err)
			}
			gs, err := skewjoin.Join(skewjoin.GSH, r, s, opts)
			if err != nil {
				log.Fatal(err)
			}
			if gb.Summary() != gs.Summary() {
				log.Fatalf("zipf %.1f: results diverge", z)
			}
			fmt.Printf("  %-6.1f %14v %14v %8.2fx\n",
				z, gb.Total, gs.Total, float64(gb.Total)/float64(gs.Total))
		}
		fmt.Println()
	}
	fmt.Println("Shrinking shared memory lowers the partition capacity, so skewed")
	fmt.Println("partitions overflow it at lower zipf factors — moving GSH's win")
	fmt.Println("earlier, as in the paper's full-scale configuration.")
}
