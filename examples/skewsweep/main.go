// Skew sweep: a miniature of the paper's Figure 4 — the paper's five
// algorithms plus the sort-merge extensions across the zipf range, with
// the per-class winners marked.
//
//	go run ./examples/skewsweep
package main

import (
	"fmt"
	"log"
	"time"

	"skewjoin"
)

func main() {
	const n = 100_000
	algs := skewjoin.ExtendedAlgorithms()

	fmt.Printf("%-6s", "zipf")
	for _, a := range algs {
		fmt.Printf("%14s", a)
	}
	fmt.Println()

	for _, z := range []float64{0.0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		r, s, err := skewjoin.GenerateZipfPair(n, z, 42)
		if err != nil {
			log.Fatal(err)
		}
		want := skewjoin.Expected(r, s)

		fmt.Printf("%-6.1f", z)
		var bestCPU, bestGPU time.Duration
		results := make([]skewjoin.Result, len(algs))
		for i, a := range algs {
			res, err := skewjoin.Join(a, r, s, nil)
			if err != nil {
				log.Fatal(err)
			}
			if res.Summary() != want {
				log.Fatalf("%s @ zipf %.1f: wrong result", a, z)
			}
			results[i] = res
			if res.Modelled {
				if bestGPU == 0 || res.Total < bestGPU {
					bestGPU = res.Total
				}
			} else {
				if bestCPU == 0 || res.Total < bestCPU {
					bestCPU = res.Total
				}
			}
		}
		for _, res := range results {
			mark := " "
			if (res.Modelled && res.Total == bestGPU) || (!res.Modelled && res.Total == bestCPU) {
				mark = "<" // fastest in its class (CPU wall-clock vs modelled GPU)
			}
			fmt.Printf("%13v%s", res.Total.Round(10*time.Microsecond), mark)
		}
		fmt.Println()
	}
	fmt.Println("\n'<' marks the fastest CPU algorithm and the fastest (modelled) GPU")
	fmt.Println("algorithm per row. The baselines collapse as the zipf factor grows;")
	fmt.Println("the skew-conscious joins and the sort-merge extensions — all of")
	fmt.Println("which generate skewed output with sequential accesses instead of")
	fmt.Println("chain walks — stay flat far longer. GPU times are modelled.")
}
