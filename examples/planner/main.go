// Adaptive dispatch: sample first, then pick the join.
//
// The skew-conscious joins pay detection and bookkeeping that uniform data
// never repays, so a system wants to decide per query whether skew
// handling is worth it (the paper cites a self-adaptive dispatcher for
// skewed hash joins as reference [33]). This example samples each workload
// with skewjoin.Recommend, estimates the output cardinality, runs the
// recommended CPU algorithm, and shows the recommendation is the right
// call on both ends of the spectrum.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"log"

	"skewjoin"
)

func main() {
	const n = 150_000
	for _, wl := range []struct {
		name  string
		theta float64
	}{
		{"uniform keys (zipf 0.0)", 0.0},
		{"moderate skew (zipf 0.6)", 0.6},
		{"heavy skew (zipf 1.0)", 1.0},
	} {
		r, s, err := skewjoin.GenerateZipfPair(n, wl.theta, 42)
		if err != nil {
			log.Fatal(err)
		}

		rec := skewjoin.Recommend(r, skewjoin.PlannerConfig{})
		est := skewjoin.EstimateOutput(r, s, skewjoin.PlannerConfig{})
		fmt.Printf("%s\n", wl.name)
		fmt.Printf("  sampled %d tuples: skew=%v, top key ~%d tuples, est. output ~%d rows\n",
			rec.SampleSize, rec.SkewDetected, rec.TopKeyEstimate, est)
		fmt.Printf("  recommendation: %s (CPU), %s (GPU)\n", rec.CPU, rec.GPU)

		chosen, err := skewjoin.Join(rec.CPU, r, s, nil)
		if err != nil {
			log.Fatal(err)
		}
		other := skewjoin.Cbase
		if rec.CPU == skewjoin.Cbase {
			other = skewjoin.CSH
		}
		alt, err := skewjoin.Join(other, r, s, nil)
		if err != nil {
			log.Fatal(err)
		}
		if chosen.Summary() != alt.Summary() {
			log.Fatal("algorithms disagree")
		}
		verdict := "right call"
		if alt.Total < chosen.Total {
			verdict = fmt.Sprintf("hindsight prefers %s", other)
		}
		fmt.Printf("  ran %-6s in %12v; %-6s took %12v -> %s\n",
			rec.CPU, chosen.Total, other, alt.Total, verdict)
		fmt.Printf("  actual output: %d rows (estimate was ~%d)\n\n", chosen.Matches, est)
	}
}
