package skewjoin

import (
	"context"
	"sync/atomic"
	"time"

	"skewjoin/internal/hashfn"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/ssj"
)

// SSJ is the streaming symmetric hash join — an extension beyond the
// paper's evaluated set (ROADMAP item 1). Both inputs are consumed in
// interleaved chunks; each tuple probes the opposite side's growable
// table and then inserts into its own, so results exist after the first
// chunk instead of after the full build, and Options.Limit can stop the
// run as soon as enough results are staged. The complete (no-limit)
// output digest is identical to the blocking operators'.
const SSJ Algorithm = "ssj"

// StreamStats reports a run's incremental-delivery milestones. It is
// always present on SSJ results; on the blocking CPU algorithms it is
// present when Options.Limit was set (measured at flush granularity, the
// first moment a result batch reaches the consumer).
type StreamStats struct {
	// FirstResultNs is the time from join start to the first staged
	// result, in nanoseconds (0 when the join is empty).
	FirstResultNs int64
	// LimitNs is the time from join start until Options.Limit results
	// were staged (0 when no limit was set or it was never reached).
	LimitNs int64
	// LimitHit reports that the run stopped early because Options.Limit
	// was reached; Matches/Checksum then digest a partial prefix of the
	// join, at least Limit results (overshoot is bounded by the chunk
	// and flush granularity).
	LimitHit bool
	// Staged is the number of results staged when the run ended.
	Staged uint64
	// Chunks is the number of streamed input chunks processed (SSJ only).
	Chunks int
}

// streamStats converts the operator's stats into the public mirror.
func streamStats(st ssj.Stats) *StreamStats {
	return &StreamStats{
		FirstResultNs: st.FirstResultNs,
		LimitNs:       st.LimitNs,
		LimitHit:      st.LimitHit,
		Staged:        st.Staged,
		Chunks:        st.Chunks,
	}
}

// limiter layers early termination onto the blocking CPU algorithms: it
// wraps the consumer chain to count flushed results, records the
// first-result and limit milestones, and cancels the run's context once
// Options.Limit results have reached the consumer. The blocking
// operators only observe the cancel at their usual boundaries (between
// join tasks for Cbase/CSH, between phases for CbaseNPJ/SMJ), so the
// overshoot can be large — that blocking-vs-streaming gap is exactly
// what BENCH_stream.json measures. A nil *limiter is a no-op passthrough
// used when no limit is set.
type limiter struct {
	limit   uint64
	staged  atomic.Uint64
	firstNs atomic.Int64
	limitNs atomic.Int64
	start   time.Time
	cancel  context.CancelFunc
}

// newLimiter prepares early termination for a blocking algorithm run:
// it returns the limiter, the context the operator must run under (a
// cancellable child of ctx) and the consumer factory to install. With
// limit == 0 everything passes through unchanged (lim == nil).
func newLimiter(limit uint64, ctx context.Context, consumer func(worker int) ResultConsumer) (lim *limiter, runCtx context.Context, flush func(worker int) ResultConsumer, cancel context.CancelFunc) {
	if limit == 0 {
		return nil, ctx, consumer, func() {}
	}
	parent := ctx
	if parent == nil {
		parent = context.Background()
	}
	runCtx, cancel = context.WithCancel(parent)
	lim = &limiter{limit: limit, start: time.Now(), cancel: cancel}
	flush = func(worker int) ResultConsumer {
		var inner ResultConsumer
		if consumer != nil {
			inner = consumer(worker)
		}
		return func(batch []JoinResult) {
			if inner != nil {
				inner(batch)
			}
			lim.observe(uint64(len(batch)))
		}
	}
	return lim, runCtx, flush, cancel
}

// observe folds one flushed batch into the staged counter and fires the
// milestones; safe from concurrent workers.
func (l *limiter) observe(n uint64) {
	if n == 0 {
		return
	}
	total := l.staged.Add(n)
	if total == n {
		l.firstNs.CompareAndSwap(0, sinceNs(l.start))
	}
	if total >= l.limit {
		if l.limitNs.CompareAndSwap(0, sinceNs(l.start)) {
			l.cancel()
		}
	}
}

// hit reports whether the limit was reached (nil-safe: no limiter, no
// limit). A canceled operator run whose limiter hit is an early
// termination success, not an error.
func (l *limiter) hit() bool {
	return l != nil && l.staged.Load() >= l.limit
}

// annotate attaches the limiter's milestones to a finished result
// (nil-safe no-op without a limit).
func (l *limiter) annotate(res *Result) {
	if l == nil {
		return
	}
	res.Stream = &StreamStats{
		FirstResultNs: l.firstNs.Load(),
		LimitNs:       l.limitNs.Load(),
		LimitHit:      l.hit(),
		Staged:        l.staged.Load(),
	}
}

// sinceNs returns the nanoseconds elapsed since start, at least 1 so a
// recorded milestone is distinguishable from the zero "never happened".
func sinceNs(start time.Time) int64 {
	ns := int64(time.Since(start))
	if ns < 1 {
		ns = 1
	}
	return ns
}

// limitBufCap shrinks the output ring so limit detection is not stalled
// behind a default-sized ring: a blocking operator only reaches its
// consumer (and thus the limiter) on a full ring or at phase end, so a
// limit far below the ring capacity would otherwise be observed only
// when the whole run finishes.
func limitBufCap(cap int, limit uint64) int {
	if limit == 0 {
		return cap
	}
	if cap <= 0 {
		cap = outbuf.DefaultCapacity
	}
	if uint64(cap) > limit {
		cap = hashfn.NextPow2(int(limit))
		if cap < 64 {
			cap = 64
		}
	}
	return cap
}
