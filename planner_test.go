package skewjoin

import "testing"

func TestRecommendUniformPicksBaselines(t *testing.T) {
	r, _, err := GenerateZipfPair(100000, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := Recommend(r, PlannerConfig{})
	if rec.SkewDetected {
		t.Errorf("uniform input flagged as skewed: %+v", rec)
	}
	if rec.CPU != Cbase || rec.GPU != Gbase {
		t.Errorf("uniform input should pick baselines, got %s/%s", rec.CPU, rec.GPU)
	}
}

func TestRecommendSkewedPicksSkewConscious(t *testing.T) {
	r, _, err := GenerateZipfPair(100000, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := Recommend(r, PlannerConfig{})
	if !rec.SkewDetected {
		t.Fatalf("zipf 1.0 not flagged as skewed: %+v", rec)
	}
	if rec.CPU != CSH || rec.GPU != GSH {
		t.Errorf("skewed input should pick CSH/GSH, got %s/%s", rec.CPU, rec.GPU)
	}
	st := Stats(r)
	// The estimate should be within 3x of the true top frequency.
	if rec.TopKeyEstimate < st.MaxKeyFreq/3 || rec.TopKeyEstimate > st.MaxKeyFreq*3 {
		t.Errorf("top-key estimate %d vs true %d", rec.TopKeyEstimate, st.MaxKeyFreq)
	}
}

func TestRecommendEmptyRelation(t *testing.T) {
	var empty Relation
	rec := Recommend(empty, PlannerConfig{})
	if rec.SkewDetected || rec.CPU != Cbase {
		t.Errorf("empty relation: %+v", rec)
	}
}

func TestRecommendConfigKnobs(t *testing.T) {
	r, _, err := GenerateZipfPair(50000, 0.8, 7)
	if err != nil {
		t.Fatal(err)
	}
	// An absurdly high partition budget suppresses the recommendation.
	rec := Recommend(r, PlannerConfig{PartitionTuples: 1 << 30})
	if rec.SkewDetected {
		t.Errorf("huge budget still detected skew: %+v", rec)
	}
	// A tiny budget plus full sampling triggers it.
	rec = Recommend(r, PlannerConfig{SampleRate: 1, PartitionTuples: 4})
	if !rec.SkewDetected {
		t.Errorf("tiny budget did not detect skew: %+v", rec)
	}
}

func TestEstimateOutputAccurateUnderSkew(t *testing.T) {
	for _, z := range []float64{0.5, 0.8, 1.0} {
		r, s, err := GenerateZipfPair(100000, z, 42)
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateOutput(r, s, PlannerConfig{})
		truth := Expected(r, s).Matches
		ratio := float64(est) / float64(truth)
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("zipf %.1f: estimate %d vs truth %d (ratio %.2f)", z, est, truth, ratio)
		}
	}
}

func TestEstimateOutputMonotoneInSkew(t *testing.T) {
	var prev uint64
	for _, z := range []float64{0.3, 0.6, 0.9} {
		r, s, err := GenerateZipfPair(50000, z, 7)
		if err != nil {
			t.Fatal(err)
		}
		est := EstimateOutput(r, s, PlannerConfig{})
		if est < prev {
			t.Errorf("estimate fell from %d to %d at zipf %.1f", prev, est, z)
		}
		prev = est
	}
}

func TestEstimateOutputEdgeCases(t *testing.T) {
	var empty Relation
	r, s, err := GenerateZipfPair(1000, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := EstimateOutput(empty, s, PlannerConfig{}); got != 0 {
		t.Errorf("empty R estimate %d", got)
	}
	if got := EstimateOutput(r, empty, PlannerConfig{}); got != 0 {
		t.Errorf("empty S estimate %d", got)
	}
	// Full sampling equals the exact count.
	exact := EstimateOutput(r, s, PlannerConfig{SampleRate: 1})
	if truth := Expected(r, s).Matches; exact != truth {
		t.Errorf("full-sample estimate %d != truth %d", exact, truth)
	}
}

func TestRecommendAgreesWithJoinOutcome(t *testing.T) {
	// End-to-end: on a heavily skewed workload, the recommended CPU
	// algorithm should not be slower than the one it rejected.
	r, s, err := GenerateZipfPair(100000, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	rec := Recommend(r, PlannerConfig{})
	chosen, err := Join(rec.CPU, r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	other := Cbase
	if rec.CPU == Cbase {
		other = CSH
	}
	rejected, err := Join(other, r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Allow generous noise: the recommendation must not be a regression of
	// more than 30%.
	if float64(chosen.Total) > 1.3*float64(rejected.Total) {
		t.Errorf("recommended %s (%v) much slower than rejected %s (%v)",
			rec.CPU, chosen.Total, other, rejected.Total)
	}
}
