package skewjoin

import (
	"sort"
	"sync"
	"testing"
)

// recordCollector gathers every batch a join hands its volcano consumers,
// across all workers (CPU threads and simulated SMs alike).
type recordCollector struct {
	mu   sync.Mutex
	recs []JoinResult
}

func (c *recordCollector) consumer(worker int) ResultConsumer {
	return func(batch []JoinResult) {
		c.mu.Lock()
		c.recs = append(c.recs, batch...)
		c.mu.Unlock()
	}
}

// sorted returns the collected records in canonical order, so two joins
// that emit the same multiset compare equal regardless of worker
// interleaving.
func (c *recordCollector) sorted() []JoinResult {
	sort.Slice(c.recs, func(i, j int) bool {
		a, b := c.recs[i], c.recs[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.PayloadR != b.PayloadR {
			return a.PayloadR < b.PayloadR
		}
		return a.PayloadS < b.PayloadS
	})
	return c.recs
}

// joinRecords runs one join with a collector attached and returns its
// canonically sorted output records.
func joinRecords(t *testing.T, alg Algorithm, r, s Relation, want Summary, opts Options) []JoinResult {
	t.Helper()
	col := &recordCollector{}
	opts.Consumer = col.consumer
	res, err := Join(alg, r, s, &opts)
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	if res.Summary() != want {
		t.Fatalf("%s: summary %+v, want %+v", alg, res.Summary(), want)
	}
	if uint64(len(col.recs)) != res.Matches {
		t.Fatalf("%s: consumers saw %d records, result reports %d",
			alg, len(col.recs), res.Matches)
	}
	return col.sorted()
}

// TestSplitDifferential is the co-processing correctness oracle: for every
// skew level and host-parallelism setting, backend=split must emit the
// exact same record multiset as the CPU-only and GPU-only algorithms —
// not just a matching checksum. SplitPolicyStatic forces a genuine
// two-backend split even at test-sized inputs (the model policy's 25ms
// win floor makes it rightly degenerate there); the model policy is run
// too, covering the degenerate paths.
func TestSplitDifferential(t *testing.T) {
	for _, theta := range []float64{0, 0.75, 1.25} {
		if testing.Short() && theta == 0.75 {
			continue // -short keeps the uniform and heavy-skew extremes
		}
		for _, hostpar := range []int{0, 4} {
			// 4096 tuples keeps the theta-1.25 output (the top key's cross
			// product) small enough to canonically sort six times per cell.
			r, s, err := GenerateZipfPair(4096, theta, 42)
			if err != nil {
				t.Fatal(err)
			}
			want := Expected(r, s)
			cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
			base := Options{
				Threads: 3, Device: CoupledDevice(), HostParallelism: hostpar,
				Calibration: &cal,
			}

			cpuRecs := joinRecords(t, Cbase, r, s, want, Options{Threads: 3})
			gpuRecs := joinRecords(t, Gbase, r, s, want, Options{HostParallelism: hostpar})

			for _, policy := range []SplitPolicy{SplitPolicyStatic, SplitPolicyModel, SplitPolicyCPU, SplitPolicyGPU} {
				opts := base
				opts.SplitPolicy = policy
				splitRecs := joinRecords(t, Split, r, s, want, opts)
				if !sameRecords(splitRecs, cpuRecs) {
					t.Errorf("theta=%g hostpar=%d policy=%s: split records != cpu records",
						theta, hostpar, policy)
				}
				if !sameRecords(splitRecs, gpuRecs) {
					t.Errorf("theta=%g hostpar=%d policy=%s: split records != gpu records",
						theta, hostpar, policy)
				}
			}
		}
	}
}

func sameRecords(a, b []JoinResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSplitStaticUsesBothBackends pins down that the differential test
// above actually exercised co-processing: under the static policy both
// sides must have produced output.
func TestSplitStaticUsesBothBackends(t *testing.T) {
	r, s, err := GenerateZipfPair(20000, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	res, err := Join(Split, r, s, &Options{
		Threads: 2, Device: CoupledDevice(), SplitPolicy: SplitPolicyStatic,
		Calibration: &cal,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Split
	if st == nil || st.Plan == nil {
		t.Fatal("split run missing SplitStats")
	}
	if !st.Plan.Split || len(st.Plan.CPUParts) == 0 || len(st.Plan.GPUParts) == 0 {
		t.Fatalf("static policy did not split: %+v", st.Plan)
	}
	if st.CPUJoinNs <= 0 || st.GPUJoinNs <= 0 {
		t.Fatalf("both join sides should have run: cpu=%dns gpu=%dns",
			st.CPUJoinNs, st.GPUJoinNs)
	}
	if st.Imbalance < 1 {
		t.Fatalf("imbalance %g < 1", st.Imbalance)
	}
	if st.MakespanNs != st.PartitionNs+st.PlanNs+st.JoinSideNs() {
		t.Fatalf("makespan %d != %d + %d + %d",
			st.MakespanNs, st.PartitionNs, st.PlanNs, st.JoinSideNs())
	}
	if res.Phase("partition") <= 0 || res.Phase("plan") <= 0 || res.Phase("join") <= 0 {
		t.Fatalf("split phases malformed: %+v", res.Phases)
	}
}

// TestRecommendSplitGoldenSkewed is the planner's golden placement test:
// on a heavily skewed workload against the coupled device, the model must
// choose a genuine split with the hot partition and the tail on different
// backends.
func TestRecommendSplitGoldenSkewed(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<18, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	rec := RecommendSplit(r, s, SplitConfig{
		Threads: 1, Device: CoupledDevice(), Calibration: &cal,
	})
	if !rec.SkewDetected {
		t.Error("zipf-1.1 sample should detect skew")
	}
	plan := rec.Split
	if plan == nil {
		t.Fatal("RecommendSplit returned no split plan")
	}
	if !plan.Split || plan.Recommended() != BackendSplit {
		t.Fatalf("skewed coupled workload should split: %+v", plan)
	}
	if plan.PredictedMakespanNs >= plan.PredictedCPUOnlyNs ||
		plan.PredictedMakespanNs >= plan.PredictedGPUOnlyNs {
		t.Fatalf("predicted makespan %d must beat both controls (cpu=%d gpu=%d)",
			plan.PredictedMakespanNs, plan.PredictedCPUOnlyNs, plan.PredictedGPUOnlyNs)
	}
	// The hot partition is isolated on the minority backend (on the
	// coupled device: the CPU — the Gbase-style kernel re-reads S per
	// sub-list, so the oversized hot partition is the GPU's worst case),
	// while the tail fills the other side.
	if len(plan.CPUParts) == 0 || len(plan.GPUParts) == 0 {
		t.Fatalf("split plan must use both backends: %+v", plan)
	}
	if plan.Calibration != cal {
		t.Errorf("plan calibration %+v, want %+v", plan.Calibration, cal)
	}
}

// TestRecommendSplitGoldenUniform: a uniform workload's join is
// milliseconds; the predicted win can never clear the absolute floor, so
// the plan must degenerate to the cheaper single backend.
func TestRecommendSplitGoldenUniform(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<16, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	rec := RecommendSplit(r, s, SplitConfig{
		Threads: 1, Device: CoupledDevice(), Calibration: &cal,
	})
	plan := rec.Split
	if plan == nil {
		t.Fatal("RecommendSplit returned no split plan")
	}
	if plan.Split {
		t.Fatalf("uniform workload should degenerate: %+v", plan)
	}
	if got := plan.Recommended(); got != BackendCPU && got != BackendGPU {
		t.Fatalf("degenerate recommendation = %q", got)
	}
	if len(plan.CPUParts) != 0 && len(plan.GPUParts) != 0 {
		t.Fatalf("degenerate plan uses both backends: %+v", plan)
	}
}

// TestSplitModelDegenerateStillJoins: at small sizes the model policy
// degenerates to one backend; the executor must still produce the full
// join through that single side.
func TestSplitModelDegenerateStillJoins(t *testing.T) {
	r, s, err := GenerateZipfPair(5000, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	res, err := Join(Split, r, s, &Options{
		Threads: 2, Device: CoupledDevice(), Calibration: &cal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary() != Expected(r, s) {
		t.Fatalf("degenerate split: got %+v, want %+v", res.Summary(), Expected(r, s))
	}
	if res.Split == nil || res.Split.Plan == nil || res.Split.Plan.Split {
		t.Fatalf("expected a degenerate plan, got %+v", res.Split)
	}
}

// TestPlannerStride is the regression test for the SampleRate-to-stride
// conversion: truncation used to turn rate 0.15 into stride 6 (16.7%,
// over-sampling), and rates above 1.0 silently became stride 1 by
// accident rather than by definition.
func TestPlannerStride(t *testing.T) {
	for _, tc := range []struct {
		rate float64
		want int
	}{
		{0.15, 7}, // 1/0.15 = 6.67 rounds to 7; truncation gave 6
		{1.5, 1},  // clamped to 1.0: documented, not accidental
		{1.0, 1},
		{0.5, 2},
		{0.03, 33},  // 1/0.03 = 33.3 rounds to 33
		{0.01, 100}, // the default rate
	} {
		cfg := PlannerConfig{SampleRate: tc.rate}.defaults()
		if got := cfg.stride(); got != tc.want {
			t.Errorf("stride(rate=%g) = %d, want %d", tc.rate, got, tc.want)
		}
	}
	// The zero value must keep the default 1% sampling.
	if got := (PlannerConfig{}).defaults().stride(); got != 100 {
		t.Errorf("default stride = %d, want 100", got)
	}
}
