package skewjoin

import (
	"sync"
	"time"

	"skewjoin/internal/costmodel"
	"skewjoin/internal/exec"
	"skewjoin/internal/gpupart"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/joinphase"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Split is the co-processing execution mode: one join is split across the
// CPU workers and the simulated GPU, with the per-radix-partition
// placement chosen by the calibrated cost model (RecommendSplit) and both
// backends running concurrently. It is an engine mode rather than one of
// the paper's algorithms, so it is not listed by ExtendedAlgorithms.
const Split Algorithm = "split"

// Backend selects which processor(s) a join runs on — the service and CLI
// layer's dispatch axis, orthogonal to the Algorithm choice within a
// backend.
type Backend string

// The engine's backends.
const (
	BackendCPU   Backend = "cpu"
	BackendGPU   Backend = "gpu"
	BackendSplit Backend = "split"
)

// SplitPolicy selects how the Split mode places partitions.
type SplitPolicy string

// Placement policies. The zero value is the cost-model placement.
const (
	// SplitPolicyModel places partitions by the calibrated cost model,
	// degenerating to a single backend when the predicted win is below
	// threshold (the default).
	SplitPolicyModel SplitPolicy = "model"
	// SplitPolicyCPU pins every partition to the CPU side — the CPU-only
	// control row of the coproc benchmark, sharing the split executor's
	// partition and merge machinery so comparisons cancel them out.
	SplitPolicyCPU SplitPolicy = "cpu"
	// SplitPolicyGPU pins every partition to the simulated GPU.
	SplitPolicyGPU SplitPolicy = "gpu"
	// SplitPolicyStatic alternates partitions round-robin between the
	// backends, ignoring the cost model — the naive co-processing
	// control.
	SplitPolicyStatic SplitPolicy = "static"
)

// Calibration holds the fitted CPU cost-model constants (see
// internal/costmodel): ns per built tuple and ns per probe unit. The
// constants are host properties; fit them once and reuse across joins.
type Calibration = costmodel.Calibration

// Calibrate fits the CPU cost-model constants with a micro-run of cbase
// over stride-sampled slices of r and s. Costs a few milliseconds; the
// service layer caches the result in its catalog.
func Calibrate(r, s Relation, threads int) Calibration {
	return costmodel.Calibrate(r, s, threads)
}

// CoupledDevice returns the simulated integrated (coupled CPU-GPU
// architecture) device profile — a GPU only a small multiple faster than
// the host cores, the regime where co-processing pays off. With the
// default discrete A100 profile the split planner correctly degenerates
// to GPU-only, since an A100 outruns host cores by orders of magnitude.
func CoupledDevice() DeviceConfig { return gpusim.Coupled() }

// SplitStats reports how a Split run distributed and overlapped its work.
// CPU times are host times; GPU times are modelled device times, so the
// makespan is a hybrid clock: the join-phase time is the max of the CPU
// side's per-worker busy time and the GPU side's modelled time. Using
// busy time (build+probe ns over the worker count) rather than the CPU
// goroutine's wall time keeps the metric meaningful even when the host
// is too small to truly overlap the join workers with the simulator's
// own host work (simulating the GPU costs host cycles that a real
// co-processor would not).
type SplitStats struct {
	// Plan is the executed placement with the cost model's predictions.
	Plan *SplitPlan
	// PartitionNs / PlanNs are the shared prefix: wall time radix
	// partitioning both inputs and planning the placement.
	PartitionNs, PlanNs int64
	// CPUJoinNs is the CPU side's busy time per worker:
	// (BuildNs+ProbeNs)/threads, 0 when no partition ran on the CPU.
	CPUJoinNs int64
	// CPUWallNs is the CPU-side goroutine's measured wall time.
	CPUWallNs int64
	// GPUJoinNs / GPUTransferNs are the GPU side's modelled join and
	// H2D+D2H staging times.
	GPUJoinNs, GPUTransferNs int64
	// MakespanNs = PartitionNs + PlanNs + max(CPUJoinNs, GPUJoinNs+GPUTransferNs).
	MakespanNs int64
	// Imbalance is max(side)/min(side) over the two join-side times when
	// both backends ran, 0 otherwise. 1.0 = perfectly balanced split.
	Imbalance float64
	// CPUFragments / GPUFragments are the per-backend probe-range counts
	// of a fragmented hot partition (Plan.Fragments executed), 0/0 when
	// the run did not fragment.
	CPUFragments, GPUFragments int
}

// Fragmented reports whether the run split one partition's probe side
// across both backends.
func (st *SplitStats) Fragmented() bool { return st.CPUFragments+st.GPUFragments > 0 }

// JoinSideNs returns the actual overlapped join-phase time:
// max(CPUJoinNs, GPUJoinNs+GPUTransferNs). Compare against
// Plan.PredictedMakespanNs for the cost model's accuracy.
func (st *SplitStats) JoinSideNs() int64 {
	gpu := st.GPUJoinNs + st.GPUTransferNs
	if st.CPUJoinNs > gpu {
		return st.CPUJoinNs
	}
	return gpu
}

// joinSplit is the co-processing executor: radix-partition both inputs
// (overlapped, as cbase), plan the per-partition placement, then run the
// CPU join workers and the host-parallel GPU simulation concurrently and
// merge both output streams into the volcano consumers.
func joinSplit(r, s Relation, opts *Options) (Result, error) {
	ctx := opts.Context
	threads := opts.Threads
	if threads <= 0 {
		threads = exec.DefaultThreads()
	}
	bits1, bits2 := opts.Bits1, opts.Bits2
	if bits1 == 0 && bits2 == 0 {
		bits1, bits2 = 6, 5
	}
	bits1, bits2 = radix.ClampBits(bits1, bits2)
	dcfg := opts.deviceConfig().Defaults()

	var timer exec.PhaseTimer
	rcfg := radix.Config{
		Threads: threads, Bits1: bits1, Bits2: bits2,
		Scatter: opts.Scatter, Sched: opts.Sched, Ctx: ctx,
	}

	// Shared prefix 1: partition R and S, overlapped like cbase.
	var pr, ps *radix.Partitioned
	timer.Time("partition", func() {
		if threads > 1 {
			rc, sc := rcfg, rcfg
			rc.Threads, sc.Threads = exec.SplitThreads(threads, r.Len(), s.Len())
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				pr = radix.Partition(r.Tuples, rc, nil)
			}()
			ps = radix.Partition(s.Tuples, sc, nil)
			wg.Wait()
		} else {
			pr = radix.Partition(r.Tuples, rcfg, nil)
			ps = radix.Partition(s.Tuples, rcfg, nil)
		}
	})
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}

	// Shared prefix 2: cost every partition and place it.
	cal := resolveCalibration(opts.Calibration, r, s, threads)
	mcfg := costmodel.Config{
		Device: dcfg, Calib: cal, Threads: threads,
		MinWinNs: float64(opts.SplitMinWinNs), WinFraction: opts.SplitWinFraction,
		Fragments: opts.Fragments,
	}
	var plan costmodel.Plan
	timer.Time("plan", func() {
		costs := costmodel.Costs(pr, ps, mcfg)
		switch opts.SplitPolicy {
		case SplitPolicyCPU:
			plan = costmodel.ForcePlan(costs, mcfg, costmodel.CPU)
		case SplitPolicyGPU:
			plan = costmodel.ForcePlan(costs, mcfg, costmodel.GPU)
		case SplitPolicyStatic:
			plan = costmodel.StaticPlan(costs, mcfg)
		default:
			plan = costmodel.BuildPlan(costs, mcfg)
		}
	})
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}

	// Consumers: CPU workers own [0,threads), simulated SMs own
	// [threads, threads+NumSMs). Factories are invoked sequentially here,
	// before either side starts, per the Options.Consumer contract.
	bufs := make([]*outbuf.Buffer, threads)
	for w := range bufs {
		bufs[w] = outbuf.New(opts.OutBufCap)
		if opts.Consumer != nil {
			bufs[w].SetFlush(opts.Consumer(w))
		}
	}
	dev := gpusim.NewDevice(dcfg)
	if opts.Consumer != nil {
		dev.SetFlush(func(sm int) outbuf.FlushFunc { return opts.Consumer(threads + sm) })
	}

	// A fragmented hot partition contributes probe ranges to both sides:
	// contiguous same-backend fragments coalesce so the CPU side builds
	// its replica of the hot build table exactly once (joinphase's
	// oversized-split then fans the big range out into probe sub-tasks
	// over the fetch-add queue) and the GPU side launches one
	// probe-range-restricted set of sub-list blocks.
	cpuRanges, gpuRanges := fragmentRanges(plan.Fragments)

	// Run both sides concurrently and merge their streams.
	var cpuStats joinphase.Stats
	var cpuWall time.Duration
	g := &exec.Group{}
	joinStart := time.Now()
	g.Go(func() error {
		defer func() { cpuWall = time.Since(joinStart) }()
		if len(plan.CPUParts) == 0 && len(cpuRanges) == 0 {
			return nil
		}
		cpuStats = joinphase.Run(pr, ps, joinphase.Config{
			Threads: threads, SkewFactor: 4,
			Sched: opts.Sched, Probe: opts.Probe, Layout: opts.Layout,
			Ctx: ctx, Parts: plan.CPUParts, Ranges: cpuRanges,
		}, bufs)
		for _, b := range bufs {
			b.Flush()
		}
		if cpuStats.Canceled {
			return ctx.Err()
		}
		return nil
	})
	g.Go(func() error {
		defer dev.FlushOutputs()
		if len(plan.GPUParts) == 0 && len(gpuRanges) == 0 {
			return nil
		}
		return runSplitGPU(opts, dev, pr, ps, plan.GPUParts, gpuRanges)
	})
	if err := g.Wait(); err != nil {
		return Result{}, err
	}

	sum := mergeSplitSummaries(outbuf.Summarize(bufs), dev.OutputSummary())

	st := &SplitStats{Plan: publicSplitPlan(plan, pr.Fanout(), cal)}
	st.CPUFragments, st.GPUFragments = st.Plan.FragmentCounts()
	if pd, ok := timer.Get("partition"); ok {
		st.PartitionNs = pd.Nanoseconds()
	}
	if pd, ok := timer.Get("plan"); ok {
		st.PlanNs = pd.Nanoseconds()
	}
	st.CPUJoinNs = (cpuStats.BuildNs + cpuStats.ProbeNs) / int64(threads)
	st.CPUWallNs = cpuWall.Nanoseconds()
	st.GPUJoinNs = dev.PhaseTime("join").Nanoseconds()
	st.GPUTransferNs = dev.PhaseTime("transfer").Nanoseconds()
	st.MakespanNs = st.PartitionNs + st.PlanNs + st.JoinSideNs()
	gpuSide := st.GPUJoinNs + st.GPUTransferNs
	if st.CPUJoinNs > 0 && gpuSide > 0 {
		lo, hi := float64(st.CPUJoinNs), float64(gpuSide)
		if lo > hi {
			lo, hi = hi, lo
		}
		st.Imbalance = hi / lo
	}

	timer.Add("join", time.Duration(st.JoinSideNs()))
	out := wrap(Split, sum, phases(timer.Phases()), false)
	out.JoinPhase = joinPhaseStats(cpuStats)
	out.Split = st
	return out, nil
}

// mergeSplitSummaries is the co-processing merge: the output summary is
// an order-independent sum (count and checksum are both linear in the
// emitted records), so the CPU workers' buffers and the simulated SMs'
// buffers combine by plain field addition regardless of interleaving.
//
//skewlint:hotpath
func mergeSplitSummaries(cpu, gpu outbuf.Summary) outbuf.Summary {
	return outbuf.Summary{
		Count:    cpu.Count + gpu.Count,
		Checksum: cpu.Checksum + gpu.Checksum,
	}
}

// fragmentRanges splits a fragmented plan's fragment list into the CPU
// side's probe ranges and the GPU side's, coalescing contiguous
// same-backend fragments of the same partition into one range each. The
// coalescing is what keeps build replication a one-time cost per backend:
// the CPU side sees a single range task (built once, fanned out into
// probe sub-tasks by the oversized-split), and the GPU side stages and
// decomposes its replica once.
func fragmentRanges(frags []costmodel.Fragment) (cpu, gpu []joinphase.ProbeRange) {
	coalesce := func(rs []joinphase.ProbeRange, f costmodel.Fragment) []joinphase.ProbeRange {
		if n := len(rs); n > 0 && rs[n-1].Part == f.Part && rs[n-1].Hi == f.Lo {
			rs[n-1].Hi = f.Hi
			return rs
		}
		return append(rs, joinphase.ProbeRange{Part: f.Part, Lo: f.Lo, Hi: f.Hi})
	}
	for _, f := range frags {
		if f.Backend == costmodel.GPU {
			gpu = coalesce(gpu, f)
		} else {
			cpu = coalesce(cpu, f)
		}
	}
	return cpu, gpu
}

// splitGPUTask is one thread block of the split GPU side: an R sub-list
// of a partition joined against the partition's S side — all of it for a
// whole-partition placement, or the fragment's probe range [sLo, sHi)
// when the partition is fragmented across backends.
type splitGPUTask struct {
	part     int
	lo, hi   int // R sub-list bounds within the partition
	sLo, sHi int // S probe range when sHi > sLo; whole side otherwise
}

// runSplitGPU executes the GPU-assigned partitions, plus the GPU-side
// probe ranges of a fragmented partition, on the simulated device: one
// bulk H2D staging transfer of the assigned tuples, one join launch with
// an R partition larger than shared memory decomposed into sub-lists
// (each re-probing its full S share, Gbase's skew behaviour the cost
// model mirrors), and the D2H staging of the results. A fragment's
// blocks replicate the full R side but probe only S[sLo:sHi). With
// Options.HostParallelism > 0 the launch's blocks execute on a host
// worker pool, bit-identically to serial execution.
//
//skewlint:hotpath
func runSplitGPU(opts *Options, dev *gpusim.Device, pr, ps *radix.Partitioned, parts []int, frags []joinphase.ProbeRange) error {
	ctx := opts.Context
	if err := ctxErr(ctx); err != nil {
		return err
	}
	bytes := 0
	for _, p := range parts {
		bytes += (pr.Size(p) + ps.Size(p)) * relation.TupleSize
	}
	for _, f := range frags {
		bytes += (pr.Size(f.Part) + (f.Hi - f.Lo)) * relation.TupleSize
	}
	dev.Transfer("transfer", "split-h2d", bytes)

	capacity := dev.PartitionCapacityTuples()
	if capacity < 1 {
		capacity = 1
	}
	tasks := make([]splitGPUTask, 0, len(parts)+len(frags))
	addTasks := func(p, sLo, sHi int) {
		nR := pr.Size(p)
		if nR == 0 {
			return
		}
		for lo := 0; lo < nR; lo += capacity {
			hi := lo + capacity
			if hi > nR {
				hi = nR
			}
			tasks = append(tasks, splitGPUTask{part: p, lo: lo, hi: hi, sLo: sLo, sHi: sHi})
		}
	}
	for _, p := range parts {
		if ps.Size(p) == 0 {
			continue
		}
		addTasks(p, 0, 0)
	}
	for _, f := range frags {
		if f.Hi <= f.Lo {
			continue
		}
		addTasks(f.Part, f.Lo, f.Hi)
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	if len(tasks) > 0 {
		dev.Launch("join", "split-join", len(tasks), func(b *gpusim.Block) {
			t := tasks[b.Idx]
			sSide := ps.Part(t.part)
			if t.sHi > t.sLo {
				sSide = sSide[t.sLo:t.sHi]
			}
			gpupart.ProbeJoinBlock(b, pr.Part(t.part)[t.lo:t.hi], sSide)
		})
	}
	// D2H: stage the produced results back to the host consumers.
	dev.Transfer("transfer", "split-d2h", int(dev.OutputSummary().Count)*12)
	return ctxErr(ctx)
}
