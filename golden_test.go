package skewjoin

import (
	"fmt"
	"testing"
)

// TestGoldenWorkloads pins the workload generator and oracle to known
// values for fixed seeds. Any change to the interval construction, key
// sampling, draw procedure or checksum definition shows up here first —
// reproducibility of every experiment in EXPERIMENTS.md depends on these
// staying stable.
func TestGoldenWorkloads(t *testing.T) {
	golden := []struct {
		n        int
		theta    float64
		seed     int64
		matches  uint64
		checksum uint64
	}{
		{10000, 0.0, 42, 9913, 0xb924be6e382c471c},
		{10000, 0.7, 42, 131133, 0xaf5fc23ac7065323},
		{10000, 1.0, 42, 1805154, 0x132d9440ff1c51e3},
		{25000, 0.9, 7, 3524904, 0x274e6542b4769212},
	}
	for _, g := range golden {
		r, s, err := GenerateZipfPair(g.n, g.theta, g.seed)
		if err != nil {
			t.Fatal(err)
		}
		e := Expected(r, s)
		if e.Matches != g.matches || e.Checksum != g.checksum {
			t.Errorf("n=%d zipf=%.1f seed=%d: got (%d, %#x), want (%d, %#x) — generator or checksum changed",
				g.n, g.theta, g.seed, e.Matches, e.Checksum, g.matches, g.checksum)
		}
		// Every algorithm must land exactly on the golden summary too.
		for _, alg := range ExtendedAlgorithms() {
			res, err := Join(alg, r, s, &Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != g.matches || res.Checksum != g.checksum {
				t.Errorf("%s on golden workload n=%d zipf=%.1f: got (%d, %#x)",
					alg, g.n, g.theta, res.Matches, res.Checksum)
			}
		}
	}
}

// TestGoldenAcrossPartitionVariants pins the optimisation contract of the
// partitioner overhaul: every combination of scatter strategy and task
// queue must land exactly on the golden output — the write-combining
// scatter and the lock-free dequeue are required to be bit-for-bit
// output-equivalent to the seed paths.
func TestGoldenAcrossPartitionVariants(t *testing.T) {
	const (
		n     = 10000
		theta = 0.7
		seed  = int64(42)
	)
	const wantMatches, wantChecksum = 131133, uint64(0xaf5fc23ac7065323)
	r, s, err := GenerateZipfPair(n, theta, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Cbase, CSH} {
		for _, scatter := range []ScatterMode{ScatterAuto, ScatterDirect, ScatterWC} {
			for _, sched := range []SchedMode{SchedAtomic, SchedMutex} {
				name := fmt.Sprintf("%s/scatter=%s/sched=%s", alg, scatter, sched)
				res, err := Join(alg, r, s, &Options{Threads: 2, Scatter: scatter, Sched: sched})
				if err != nil {
					t.Fatal(err)
				}
				if res.Matches != wantMatches || res.Checksum != wantChecksum {
					t.Errorf("%s: got (%d, %#x), want (%d, %#x)",
						name, res.Matches, res.Checksum, wantMatches, wantChecksum)
				}
			}
		}
	}
}

// TestGoldenAcrossJoinVariants is the same contract for the join-phase
// overhaul: the grouped probe and the compact bucket-array layout must land
// exactly on the golden output in every combination, for both CPU hash
// joins and the no-partition baseline (which only has the probe knob).
func TestGoldenAcrossJoinVariants(t *testing.T) {
	const (
		n     = 10000
		theta = 0.7
		seed  = int64(42)
	)
	const wantMatches, wantChecksum = 131133, uint64(0xaf5fc23ac7065323)
	r, s, err := GenerateZipfPair(n, theta, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []ProbeMode{ProbeScalar, ProbeGrouped} {
		for _, layout := range []Layout{LayoutChained, LayoutCompact} {
			for _, alg := range []Algorithm{Cbase, CSH} {
				name := fmt.Sprintf("%s/probe=%s/layout=%s", alg, probe, layout)
				res, err := Join(alg, r, s, &Options{Threads: 2, Probe: probe, Layout: layout})
				if err != nil {
					t.Fatal(err)
				}
				if res.Matches != wantMatches || res.Checksum != wantChecksum {
					t.Errorf("%s: got (%d, %#x), want (%d, %#x)",
						name, res.Matches, res.Checksum, wantMatches, wantChecksum)
				}
				if res.JoinPhase == nil || res.JoinPhase.ProbeVisits == 0 {
					t.Errorf("%s: join-phase stats missing or empty: %+v", name, res.JoinPhase)
				}
			}
		}
		res, err := Join(CbaseNPJ, r, s, &Options{Threads: 2, Probe: probe})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != wantMatches || res.Checksum != wantChecksum {
			t.Errorf("cbase-npj/probe=%s: got (%d, %#x), want (%d, %#x)",
				probe, res.Matches, res.Checksum, wantMatches, wantChecksum)
		}
	}
}
