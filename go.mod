module skewjoin

go 1.22
