# Development targets for the skewjoin reproduction.

GO ?= go

.PHONY: all build vet test race lint lint-fixtures test-sanitize check fuzz bench bench-smoke bench-partition bench-join bench-gpu bench-coproc bench-coproc-smoke bench-shard bench-shard-smoke bench-stream bench-stream-smoke experiments examples serve-smoke cluster-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project-specific static analysis: the per-statement analyzers (atomic
# consistency, context propagation, hot-path allocations, lock
# discipline) plus the CFG/dataflow analyzers (lock-order,
# goroutine-leak, err-drop, retry-discipline); see DESIGN.md §4c.
# -unused-ignores makes stale suppressions fail the gate too.
lint:
	$(GO) run ./cmd/skewlint -unused-ignores ./...

# Each analyzer against its positive fixture, asserting exact findings.
lint-fixtures:
	$(GO) test ./internal/lint -run TestFixtures -v

# Run the whole suite with the sanitizer assertions compiled in
# (chain-cycle detection, scatter bounds, ring geometry).
test-sanitize:
	$(GO) test -tags sanitize ./...

# The pre-PR gate: everything CI checks that runs in minutes, locally.
check: build vet lint test test-sanitize
	test -z "$$(gofmt -l .)"

# 60 seconds of differential fuzzing against the oracle.
fuzz:
	$(GO) test -fuzz=FuzzJoinMatchesOracle -fuzztime=60s .

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash, without waiting for stable timings (CI runs this).
bench-smoke:
	$(GO) test -bench . -benchtime 1x ./...

# Partition-path A/B sweep (scatter x scheduler x skew); writes the
# machine-readable perf baseline committed as BENCH_partition.json.
bench-partition:
	$(GO) run ./cmd/skewbench -exp partition -repeats 7 -out BENCH_partition.json

# Join-path A/B sweep (probe mode x table layout x skew); writes the
# machine-readable perf baseline committed as BENCH_join.json.
bench-join:
	$(GO) run ./cmd/skewbench -exp join -repeats 7 -out BENCH_join.json

# GPU-simulation A/B sweep (algorithm x skew x HostParallelism); writes
# the machine-readable perf baseline committed as BENCH_gpu.json.
bench-gpu:
	$(GO) run ./cmd/skewbench -exp gpu -repeats 5 -out BENCH_gpu.json

# Co-processing sweep (zipf x placement policy x HostParallelism) of the
# cost-model split executor against its pinned single-backend controls;
# writes the machine-readable baseline committed as BENCH_coproc.json.
# The harness exits non-zero if the model policy measurably loses to the
# better control in any cell. -shm 8 reproduces the paper's
# skew-to-shared-memory pressure at this reduced scale (see README).
# -threads 4 models a 4-core host (the executor's hybrid clock divides
# CPU busy time by the worker count), putting the CPU within a small
# multiple of the coupled GPU — the co-processing regime the paper
# targets, and the one where the deep-skew cells must fragment the hot
# partition to beat the single-backend controls.
bench-coproc:
	$(GO) run ./cmd/skewbench -exp coproc -n 131072 -threads 4 -repeats 3 -shm 8 -out BENCH_coproc.json

# Tiny oracle-verified coproc run for CI: exercises a degenerate cell and
# a must-fragment deep-skew cell once each under every (policy, hostpar),
# checks the regression and fragment gates, and asserts the JSON artifact
# carries the measured makespans and the fragment markers. -minwin 1
# lowers the 25ms absolute win floor, meaningless at this tiny size.
bench-coproc-smoke:
	$(GO) run ./cmd/skewbench -exp coproc -n 8192 -threads 4 -repeats 1 -shm 8 -minwin 1 -zipf 0,1.2 -out /tmp/BENCH_coproc.json
	grep -q '"makespan_ns"' /tmp/BENCH_coproc.json
	grep -q '"predicted_makespan_ns"' /tmp/BENCH_coproc.json
	grep -q '"calibration"' /tmp/BENCH_coproc.json
	grep -q '"fragmented": true' /tmp/BENCH_coproc.json

# Sharded-tier sweep (zipf x routing policy on an in-process 3-shard
# fleet with an A/A hash control); writes the machine-readable baseline
# committed as BENCH_shard.json. The harness exits non-zero if frag does
# not beat both hash runs at the deepest skew point, or regresses
# elsewhere (see internal/bench/shard.go).
bench-shard:
	$(GO) run ./cmd/skewbench -exp shard -n 65536 -repeats 3 -out BENCH_shard.json

# Tiny oracle-verified shard run for CI: exercises every (zipf, policy)
# cell, checks the routing shapes and the deep-skew gate, and asserts the
# JSON artifact carries the per-shard breakdown.
bench-shard-smoke:
	$(GO) run ./cmd/skewbench -exp shard -n 16384 -repeats 2 -out /tmp/BENCH_shard.json
	grep -q '"makespan_ns"' /tmp/BENCH_shard.json
	grep -q '"per_shard_ns"' /tmp/BENCH_shard.json
	grep -q '"resolved"' /tmp/BENCH_shard.json

# Streaming-join sweep (zipf x limit fraction x operator, with an A/A
# streaming control); writes the machine-readable baseline committed as
# BENCH_stream.json. The harness exits non-zero if the streaming
# operator's time-to-limit is not 4x ahead of the blocking control at
# small limits, or a no-limit streaming run regresses past parity (see
# internal/bench/stream.go).
bench-stream:
	$(GO) run ./cmd/skewbench -exp stream -n 131072 -repeats 3 -out BENCH_stream.json

# Tiny oracle-verified stream run for CI: exercises every (zipf, limit,
# operator) cell, checks terminations against the oracle, and asserts the
# JSON artifact carries the milestone clocks.
bench-stream-smoke:
	$(GO) run ./cmd/skewbench -exp stream -n 8192 -repeats 1 -out /tmp/BENCH_stream.json
	grep -q '"time_to_first_ns"' /tmp/BENCH_stream.json
	grep -q '"time_to_limit_ns"' /tmp/BENCH_stream.json
	grep -q '"limit_hit"' /tmp/BENCH_stream.json

# Regenerate every table and figure of the paper (plus extensions).
experiments:
	$(GO) run ./cmd/skewbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/graphjoin
	$(GO) run ./examples/skewsweep
	$(GO) run ./examples/devicetuning
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/planner

# End-to-end smoke test of the join daemon: build skewjoind/skewjoinctl,
# register relations, run an auto join, force a 429, check /stats.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke test of the sharded tier: build the daemon, router and
# client, start 3 shards plus a router and a single-node control, then
# assert the fleet's answers (summary, count, topk, both routings) are
# byte-identical to the single node's, drain a shard gracefully, and
# check /cluster/stats.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# The artifacts recorded in EXPERIMENTS.md.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f r.skjr s.skjr
