# Development targets for the skewjoin reproduction.

GO ?= go

.PHONY: all build vet test race fuzz bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# 60 seconds of differential fuzzing against the oracle.
fuzz:
	$(GO) test -fuzz=FuzzJoinMatchesOracle -fuzztime=60s .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (plus extensions).
experiments:
	$(GO) run ./cmd/skewbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/graphjoin
	$(GO) run ./examples/skewsweep
	$(GO) run ./examples/devicetuning
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/planner

# The artifacts recorded in EXPERIMENTS.md.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f r.skjr s.skjr
