package skewjoin

import (
	"testing"
)

// TestRecommendSingleKeyRelation: every tuple shares one key — the most
// extreme skew. The sample is saturated with that key, so the
// skew-conscious pair must be picked for any non-trivial relation.
func TestRecommendSingleKeyRelation(t *testing.T) {
	n := 1 << 14
	keys := make([]Key, n)
	pays := make([]Payload, n)
	for i := range pays {
		pays[i] = Payload(i)
	}
	rec := Recommend(NewRelation(keys, pays), PlannerConfig{})
	if !rec.SkewDetected || rec.CPU != CSH || rec.GPU != GSH {
		t.Errorf("single-key relation: %+v, want skew detected with CSH/GSH", rec)
	}
	if rec.TopKeyEstimate < n/2 {
		t.Errorf("TopKeyEstimate = %d for a %d-tuple single-key relation", rec.TopKeyEstimate, n)
	}
}

// TestRecommendTinySingleKeyRelation: a single-key relation too small to
// dominate a partition budget stays on the baselines.
func TestRecommendTinySingleKeyRelation(t *testing.T) {
	rec := Recommend(NewRelation(make([]Key, 64), make([]Payload, 64)), PlannerConfig{SampleRate: 1})
	if rec.SkewDetected {
		t.Errorf("64-tuple single-key relation triggered skew: %+v", rec)
	}
}

// TestRecommendSampleRateExtremes: SampleRate 0 falls back to the default
// 1%, and rates above 1 clamp to scanning every tuple — neither may panic
// or divide by zero.
func TestRecommendSampleRateExtremes(t *testing.T) {
	r, _, err := GenerateZipfPair(1<<14, 0.9, 11)
	if err != nil {
		t.Fatal(err)
	}
	def := Recommend(r, PlannerConfig{})
	zero := Recommend(r, PlannerConfig{SampleRate: 0})
	if zero != def {
		t.Errorf("SampleRate 0: %+v, want default-rate result %+v", zero, def)
	}
	over := Recommend(r, PlannerConfig{SampleRate: 2.5})
	if over.SampleSize != r.Len() {
		t.Errorf("SampleRate 2.5: sampled %d of %d tuples, want full scan", over.SampleSize, r.Len())
	}
	neg := Recommend(r, PlannerConfig{SampleRate: -1})
	if neg != def {
		t.Errorf("SampleRate -1: %+v, want default-rate result %+v", neg, def)
	}
}

// TestEstimateOutputSampleRateExtremes mirrors the Recommend extremes for
// the output estimator.
func TestEstimateOutputSampleRateExtremes(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<12, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := EstimateOutput(r, s, PlannerConfig{SampleRate: 3}); got == 0 {
		t.Error("SampleRate 3 estimated zero output for a joinable pair")
	}
	def := EstimateOutput(r, s, PlannerConfig{})
	if got := EstimateOutput(r, s, PlannerConfig{SampleRate: 0}); got != def {
		t.Errorf("SampleRate 0: %d, want default-rate estimate %d", got, def)
	}
}

// TestRecommendFromStatsEmptyAndSingle: stats-based planning handles the
// degenerate shapes the scan-based planner handles.
func TestRecommendFromStatsEmptyAndSingle(t *testing.T) {
	rec := RecommendFromStats(RelationStats{}, PlannerConfig{})
	if rec.SkewDetected || rec.CPU != Cbase || rec.GPU != Gbase {
		t.Errorf("empty stats: %+v, want baselines", rec)
	}
	n := 1 << 14
	st := Stats(NewRelation(make([]Key, n), make([]Payload, n)))
	rec = RecommendFromStats(st, PlannerConfig{})
	if !rec.SkewDetected || rec.CPU != CSH {
		t.Errorf("single-key stats: %+v, want skew detected", rec)
	}
}

// TestRecommendFromStatsGolden: the decision made from cached catalog
// statistics must equal the decision made from a fresh scan of the same
// relation, across the paper's zipf range. This is the invariant the
// service layer relies on when planning `auto` joins from the catalog.
func TestRecommendFromStatsGolden(t *testing.T) {
	// Table size keeps every theta well clear of the detection boundary
	// (the sampled estimate and the exact count can land on opposite sides
	// of the partition-budget cutoff only when the top key sits near it).
	for _, theta := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0} {
		for _, seed := range []int64{42, 7} {
			r, _, err := GenerateZipfPair(1<<16, theta, seed)
			if err != nil {
				t.Fatal(err)
			}
			fresh := Recommend(r, PlannerConfig{})
			cached := RecommendFromStats(Stats(r), PlannerConfig{})
			if fresh.SkewDetected != cached.SkewDetected ||
				fresh.CPU != cached.CPU || fresh.GPU != cached.GPU {
				t.Errorf("zipf %.1f seed %d: fresh scan %+v vs cached stats %+v",
					theta, seed, fresh, cached)
			}
		}
	}
}
