package skewjoin

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestJoinPreCancelledContext: a context that is already dead must stop
// every algorithm before it does any work.
func TestJoinPreCancelledContext(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<10, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range ExtendedAlgorithms() {
		if _, err := Join(alg, r, s, &Options{Context: ctx}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Join on dead context = %v, want context.Canceled", alg, err)
		}
	}
}

// TestJoinCancelDifferential: cancelling one join mid-flight must never
// corrupt the output of another join running concurrently, and the
// cancelled join must either fail with the context's error or — if it
// happened to finish before the cancellation landed — return a correct
// result. This is the guarantee the service layer relies on when shedding
// timed-out requests while other requests keep running.
func TestJoinCancelDifferential(t *testing.T) {
	const n = 1 << 15
	r, s, err := GenerateZipfPair(n, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := Expected(r, s)

	for _, alg := range []Algorithm{Cbase, CSH} {
		for round := 0; round < 4; round++ {
			ctx, cancel := context.WithCancel(context.Background())

			// The victim: cancelled at a varying point mid-run.
			victimDone := make(chan error, 1)
			go func() {
				_, err := Join(alg, r, s, &Options{Context: ctx, Threads: 2})
				victimDone <- err
			}()
			go func() {
				time.Sleep(time.Duration(round) * 500 * time.Microsecond)
				cancel()
			}()

			// The bystander: no context, must be exact regardless of what
			// happens to the victim.
			res, err := Join(alg, r, s, &Options{Threads: 2})
			if err != nil {
				t.Fatalf("%s round %d: bystander join failed: %v", alg, round, err)
			}
			if res.Summary() != want {
				t.Fatalf("%s round %d: bystander summary %+v, want %+v", alg, round, res.Summary(), want)
			}

			if verr := <-victimDone; verr != nil && !errors.Is(verr, context.Canceled) {
				t.Fatalf("%s round %d: victim error = %v, want nil or context.Canceled", alg, round, verr)
			}
		}
	}
}

// TestJoinDeadlineExceeded: an expired deadline surfaces as
// context.DeadlineExceeded, not as a bogus partial result.
func TestJoinDeadlineExceeded(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<17, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	res, err := Join(CSH, r, s, &Options{Context: ctx, Threads: 2})
	if err == nil {
		// The machine was fast enough to beat the deadline; the result must
		// then be exact.
		if res.Summary() != Expected(r, s) {
			t.Fatalf("in-deadline result is wrong: %+v", res.Summary())
		}
		t.Skip("join beat the 1ms deadline; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Join = %v, want context.DeadlineExceeded", err)
	}
}
