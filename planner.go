package skewjoin

import (
	"skewjoin/internal/costmodel"
	"skewjoin/internal/freqtable"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
)

// Recommendation is the planner's advice for one join: which CPU and which
// GPU algorithm to use, and the evidence it based the decision on.
//
// The rule mirrors the algorithms' own detection logic: a cheap sample of R
// is counted in a frequency table, and if any key's sampled frequency
// reaches the CSH threshold *and* its estimated full-table frequency is
// large enough to dominate a cache/shared-memory-sized partition, the
// skew-conscious variants are worth their detection overhead. On
// near-uniform inputs the baselines avoid CSH's checkup-table probes and
// GSH's division pass (the paper: both skew-conscious joins are merely
// "comparable" to the baselines at zipf 0-0.4).
type Recommendation struct {
	// CPU is Cbase or CSH; GPU is Gbase or GSH.
	CPU, GPU Algorithm
	// SkewDetected reports whether the sample triggered the skew rule.
	SkewDetected bool
	// TopKeyEstimate is the estimated full-table frequency of the most
	// popular sampled key.
	TopKeyEstimate int
	// SampleSize is the number of R tuples inspected.
	SampleSize int
	// Streaming advises the streaming symmetric join (SSJ) instead of a
	// blocking operator. Set only for limited requests
	// (PlannerConfig.Limit > 0) that a stream can satisfy early: either
	// the limit is small relative to the input, or the cached heavy
	// hitters alone produce enough matches within the first chunks (the
	// skew-aware tiebreak — a hot key's output is quadratic in its
	// frequency, so it floods the limit almost immediately). Full scans
	// stay on the blocking operators, which are ~equally fast end-to-end
	// and cheaper per tuple.
	Streaming bool
	// Split, when the recommendation was produced by RecommendSplit,
	// carries the per-radix-partition CPU/GPU placement decision for the
	// co-processing backend; nil otherwise.
	Split *SplitPlan
}

// PlannerConfig tunes Recommend. The zero value uses CSH's detection
// parameters.
type PlannerConfig struct {
	// SampleRate is the fraction of R sampled (default 0.01).
	SampleRate float64
	// MinFrequency is the sampled-frequency trigger (default 2, as CSH).
	MinFrequency uint32
	// PartitionTuples is the partition budget a skewed key must be able to
	// dominate before skew handling pays off (default 4096, a
	// shared-memory/cache-sized partition).
	PartitionTuples int
	// Limit is the request's result limit (0 = full scan). A non-zero
	// limit makes the planner consider the streaming symmetric join —
	// see Recommendation.Streaming.
	Limit int
}

// streamFraction is the limit-to-input ratio below which a limited
// request is planned on the streaming join: a limit under 1/8 of the
// input is satisfied long before a blocking join's partition phase even
// finishes. Above it the streaming rule falls back to the skew tiebreak.
const streamFraction = 8

func (c PlannerConfig) defaults() PlannerConfig {
	if c.SampleRate <= 0 {
		c.SampleRate = 0.01
	}
	if c.MinFrequency == 0 {
		c.MinFrequency = 2
	}
	if c.PartitionTuples <= 0 {
		c.PartitionTuples = 4096
	}
	return c
}

// stride converts SampleRate into the sampling stride every planner scan
// uses. Rates above 1.0 are clamped to 1.0 (nothing can be sampled more
// often than every tuple; previously such rates silently degraded to
// stride 1, which was accidental rather than defined behaviour). The
// stride is rounded to nearest instead of truncated, so e.g. rate 0.15
// gives stride 7 (14.3%) rather than stride 6 (16.7%) — truncation
// always over-samples, biasing every rate between two divisors upward.
func (c PlannerConfig) stride() int {
	rate := c.SampleRate
	if rate > 1 {
		rate = 1
	}
	stride := int(1/rate + 0.5)
	if stride < 1 {
		stride = 1
	}
	return stride
}

// EstimateOutput estimates the join output cardinality |R ⋈ S| from
// samples of both tables, using the cross-sample estimator:
//
//	Σ_k fR(k)·fS(k) / (rateR · rateS)
//
// over the sampled frequency tables. Under skew the estimate is driven by
// the heavy keys, which sampling captures reliably; it underestimates the
// contribution of near-unique keys (which a 1% sample rarely pairs up),
// so treat it as an estimate of the skew-dominated output — exactly the
// part that decides between the baseline and the skew-conscious join.
func EstimateOutput(r, s Relation, cfg PlannerConfig) uint64 {
	cfg = cfg.defaults()
	if r.Len() == 0 || s.Len() == 0 {
		return 0
	}
	stride := cfg.stride()
	count := func(rel Relation) (*freqtable.Counter, int) {
		c := freqtable.New(rel.Len()/stride + 1)
		n := 0
		for i := 0; i < rel.Len(); i += stride {
			c.Add(rel.Tuples[i].Key)
			n++
		}
		return c, n
	}
	cr, nr := count(r)
	cs, ns := count(s)
	if nr == 0 || ns == 0 {
		return 0
	}
	var crossSample uint64
	cr.Each(func(k relation.Key, fr uint32) {
		if fs := cs.Count(k); fs > 0 {
			crossSample += uint64(fr) * uint64(fs)
		}
	})
	scaleR := float64(r.Len()) / float64(nr)
	scaleS := float64(s.Len()) / float64(ns)
	return uint64(float64(crossSample) * scaleR * scaleS)
}

// RecommendFromStats picks between the baseline and skew-conscious
// algorithms from a relation's cached statistics, without rescanning the
// relation. It applies Recommend's rule with the exact top-key frequency
// standing in for the sampled estimate: the expected sampled frequency of
// the top key is MaxKeyFreq/stride, and the extrapolation back is
// MaxKeyFreq itself. The service layer's catalog uses this to plan `auto`
// joins from statistics computed once at registration time.
func RecommendFromStats(st RelationStats, cfg PlannerConfig) Recommendation {
	cfg = cfg.defaults()
	rec := Recommendation{CPU: Cbase, GPU: Gbase}
	if st.Tuples == 0 {
		return rec
	}
	stride := cfg.stride()
	rec.SampleSize = (st.Tuples + stride - 1) / stride
	rec.TopKeyEstimate = st.MaxKeyFreq
	expectedSampled := uint32(st.MaxKeyFreq / stride)
	if expectedSampled >= cfg.MinFrequency && st.MaxKeyFreq >= cfg.PartitionTuples/4 {
		rec.SkewDetected = true
		rec.CPU, rec.GPU = CSH, GSH
	}
	rec.Streaming = planStreaming(cfg, st.Tuples, hotOutput(st))
	return rec
}

// hotOutput estimates how many results the cached heavy hitters alone
// contribute: a key with frequency f on one side matched against a
// comparably hot other side yields ~f² pairs. TopKeys is the cached
// heavy-hitter list; MaxKeyFreq stands in when it is absent.
func hotOutput(st RelationStats) uint64 {
	if len(st.TopKeys) == 0 {
		return uint64(st.MaxKeyFreq) * uint64(st.MaxKeyFreq)
	}
	var out uint64
	for _, kf := range st.TopKeys {
		out += uint64(kf.Freq) * uint64(kf.Freq)
	}
	return out
}

// planStreaming applies the streaming rule: only limited requests
// stream, and only when the limit is small relative to the input or the
// hot keys alone satisfy it early (the skew-aware tiebreak).
func planStreaming(cfg PlannerConfig, tuples int, hotOut uint64) bool {
	if cfg.Limit <= 0 {
		return false
	}
	if cfg.Limit <= tuples/streamFraction {
		return true
	}
	return hotOut >= uint64(cfg.Limit)
}

// Recommend samples R and picks between the baseline and skew-conscious
// algorithm for each architecture. It is the adaptive-dispatcher pattern
// for skewed hash joins, built from the paper's own detection machinery.
func Recommend(r Relation, cfg PlannerConfig) Recommendation {
	cfg = cfg.defaults()
	rec := Recommendation{CPU: Cbase, GPU: Gbase}
	if r.Len() == 0 {
		return rec
	}
	stride := cfg.stride()
	counter := freqtable.New(r.Len()/stride + 1)
	var topSampled uint32
	for i := 0; i < r.Len(); i += stride {
		if c := counter.Add(relation.Key(r.Tuples[i].Key)); c > topSampled {
			topSampled = c
		}
	}
	rec.SampleSize = (r.Len() + stride - 1) / stride
	rec.TopKeyEstimate = int(topSampled) * stride
	// Skewed enough to matter: the trigger frequency was reached in the
	// sample and the extrapolated count would fill a partition budget.
	if topSampled >= cfg.MinFrequency && rec.TopKeyEstimate >= cfg.PartitionTuples/4 {
		rec.SkewDetected = true
		rec.CPU, rec.GPU = CSH, GSH
	}
	est := uint64(rec.TopKeyEstimate)
	rec.Streaming = planStreaming(cfg, r.Len(), est*est)
	return rec
}

// SplitPlan is the co-processing placement decision: which radix
// partitions the CPU joins and which the simulated GPU joins, with the
// cost model's predictions attached. Produced by RecommendSplit and
// recorded (as executed) in Result.Split.
type SplitPlan struct {
	// Fanout is the radix fanout the partition indices refer to.
	Fanout int
	// CPUParts / GPUParts are the partition indices assigned to each
	// backend, ascending. Every non-empty partition appears exactly once,
	// except a fragmented partition (FragmentedPart), which appears in
	// neither: its placement is the per-range Fragments list.
	CPUParts, GPUParts []int
	// Fragments lists the probe-side sub-ranges of a fragmented hot
	// partition — its build side replicated to both backends, its probe
	// side split cost-proportionally. Empty when no partition fragmented.
	Fragments []SplitFragment
	// FragmentedPart is the fragmented partition's index, -1 when none.
	FragmentedPart int
	// PredictedCPUNs is the predicted CPU-side join time (per-worker busy
	// time); PredictedGPUNs the predicted modelled GPU-side time
	// including H2D/D2H staging; PredictedMakespanNs their max — the
	// predicted join-phase time with both backends overlapped.
	PredictedCPUNs, PredictedGPUNs, PredictedMakespanNs int64
	// PredictedCPUOnlyNs / PredictedGPUOnlyNs are the single-backend
	// controls the split was judged against.
	PredictedCPUOnlyNs, PredictedGPUOnlyNs int64
	// PredictedBalancedNs is the fractional balanced-makespan lower bound
	// — the fragmentation trigger compares the hot partition against it.
	PredictedBalancedNs int64
	// Split reports whether both backends are used. When false the plan
	// degenerated, Degenerate names the backend everything runs on, and
	// DegenerateReason classifies why ("hot-partition-dominates" when the
	// hot partition alone blocks any winning split,
	// "min-win-threshold" when the predicted win fell under the floor,
	// "policy-pinned" when a control policy chose the backend).
	Split            bool
	Degenerate       Backend
	DegenerateReason string
	// Calibration holds the CPU cost constants the plan was built with.
	Calibration Calibration
}

// SplitFragment is one probe-side sub-range of a fragmented partition,
// placed on one backend against the partition's replicated build side.
type SplitFragment struct {
	Part    int     `json:"part"`
	Lo      int     `json:"lo"` // probe range [Lo, Hi)
	Hi      int     `json:"hi"`
	Backend Backend `json:"backend"`
}

// Fragmented reports whether the plan splits one partition across both
// backends.
func (p *SplitPlan) Fragmented() bool { return len(p.Fragments) > 0 }

// FragmentCounts returns how many probe-side fragments each backend
// executes — the per-backend breakdown of a fragmented hot partition.
func (p *SplitPlan) FragmentCounts() (cpu, gpu int) {
	for _, f := range p.Fragments {
		if f.Backend == BackendGPU {
			gpu++
		} else {
			cpu++
		}
	}
	return cpu, gpu
}

// Recommended returns the backend the plan advises: BackendSplit, or the
// single backend a degenerate plan falls back to.
func (p *SplitPlan) Recommended() Backend {
	if p.Split {
		return BackendSplit
	}
	if p.Degenerate == BackendGPU {
		return BackendGPU
	}
	return BackendCPU
}

// SplitConfig tunes RecommendSplit. The zero value partitions with the
// CPU defaults, targets the default (A100) device, and calibrates the
// CPU constants with a micro-run.
type SplitConfig struct {
	// Threads is the CPU worker count the plan divides CPU work over
	// (default: DefaultThreads).
	Threads int
	// Bits1/Bits2 are the radix partitioning bits (defaults 6/5, as Cbase).
	Bits1, Bits2 uint32
	// Device is the simulated GPU the plan targets (zero fields = A100).
	Device DeviceConfig
	// Calibration optionally supplies pre-fitted CPU cost constants; nil
	// runs Calibrate on the inputs.
	Calibration *Calibration
	// MinWinNs / WinFraction are the degeneration thresholds: a split
	// must be predicted to beat the better single backend by at least
	// max(MinWinNs, WinFraction·better) or the plan degenerates
	// (defaults 25ms and 0.10).
	MinWinNs    int64
	WinFraction float64
	// Fragments is the granularity the hot partition's probe side is cut
	// into when it dominates the makespan (default 8, minimum 2);
	// negative disables fragmentation, restoring whole-partition
	// placement.
	Fragments int
	// FragmentFactor is the fragmentation trigger: the hot partition
	// fragments only when its cheaper-backend solo time exceeds
	// FragmentFactor times the balanced-makespan bound (default 1.2).
	FragmentFactor float64
}

// RecommendSplit extends Recommend with the co-processing placement
// decision: it radix-partitions both inputs, predicts every partition's
// cost on each backend, and plans the two-bin assignment minimizing
// predicted makespan. The algorithm-choice fields of the returned
// Recommendation come from Recommend's sampling rule; Split carries the
// placement.
func RecommendSplit(r, s Relation, cfg SplitConfig) Recommendation {
	rec := Recommend(r, PlannerConfig{})
	threads := cfg.Threads
	if threads <= 0 {
		threads = DefaultThreads()
	}
	bits1, bits2 := cfg.Bits1, cfg.Bits2
	if bits1 == 0 && bits2 == 0 {
		bits1, bits2 = 6, 5
	}
	bits1, bits2 = radix.ClampBits(bits1, bits2)
	rcfg := radix.Config{Threads: threads, Bits1: bits1, Bits2: bits2}
	pr := radix.Partition(r.Tuples, rcfg, nil)
	ps := radix.Partition(s.Tuples, rcfg, nil)

	cal := resolveCalibration(cfg.Calibration, r, s, threads)
	mcfg := costmodel.Config{
		Device: cfg.Device, Calib: cal, Threads: threads,
		MinWinNs: float64(cfg.MinWinNs), WinFraction: cfg.WinFraction,
		Fragments: cfg.Fragments, FragmentFactor: cfg.FragmentFactor,
	}
	costs := costmodel.Costs(pr, ps, mcfg)
	plan := costmodel.BuildPlan(costs, mcfg)
	rec.Split = publicSplitPlan(plan, rcfg.Fanout(), cal)
	return rec
}

// resolveCalibration returns *cal if provided, else fits constants with a
// micro-run on the inputs.
func resolveCalibration(cal *Calibration, r, s Relation, threads int) Calibration {
	if cal != nil && cal.Valid() {
		return *cal
	}
	return Calibrate(r, s, threads)
}

// publicSplitPlan converts the internal plan into the public mirror.
func publicSplitPlan(plan costmodel.Plan, fanout int, cal Calibration) *SplitPlan {
	p := &SplitPlan{
		Fanout:              fanout,
		CPUParts:            plan.CPUParts,
		GPUParts:            plan.GPUParts,
		FragmentedPart:      plan.FragPart,
		PredictedCPUNs:      int64(plan.CPUNs),
		PredictedGPUNs:      int64(plan.GPUNs),
		PredictedMakespanNs: int64(plan.MakespanNs),
		PredictedCPUOnlyNs:  int64(plan.CPUOnlyNs),
		PredictedGPUOnlyNs:  int64(plan.GPUOnlyNs),
		PredictedBalancedNs: int64(plan.BalancedNs),
		Split:               plan.Split,
		Calibration:         cal,
	}
	for _, f := range plan.Fragments {
		b := BackendCPU
		if f.Backend == costmodel.GPU {
			b = BackendGPU
		}
		p.Fragments = append(p.Fragments, SplitFragment{Part: f.Part, Lo: f.Lo, Hi: f.Hi, Backend: b})
	}
	if !plan.Split {
		p.Degenerate = BackendCPU
		if plan.Degenerate == costmodel.GPU {
			p.Degenerate = BackendGPU
		}
		p.DegenerateReason = plan.DegenerateReason
	}
	return p
}
