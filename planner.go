package skewjoin

import (
	"skewjoin/internal/freqtable"
	"skewjoin/internal/relation"
)

// Recommendation is the planner's advice for one join: which CPU and which
// GPU algorithm to use, and the evidence it based the decision on.
//
// The rule mirrors the algorithms' own detection logic: a cheap sample of R
// is counted in a frequency table, and if any key's sampled frequency
// reaches the CSH threshold *and* its estimated full-table frequency is
// large enough to dominate a cache/shared-memory-sized partition, the
// skew-conscious variants are worth their detection overhead. On
// near-uniform inputs the baselines avoid CSH's checkup-table probes and
// GSH's division pass (the paper: both skew-conscious joins are merely
// "comparable" to the baselines at zipf 0-0.4).
type Recommendation struct {
	// CPU is Cbase or CSH; GPU is Gbase or GSH.
	CPU, GPU Algorithm
	// SkewDetected reports whether the sample triggered the skew rule.
	SkewDetected bool
	// TopKeyEstimate is the estimated full-table frequency of the most
	// popular sampled key.
	TopKeyEstimate int
	// SampleSize is the number of R tuples inspected.
	SampleSize int
}

// PlannerConfig tunes Recommend. The zero value uses CSH's detection
// parameters.
type PlannerConfig struct {
	// SampleRate is the fraction of R sampled (default 0.01).
	SampleRate float64
	// MinFrequency is the sampled-frequency trigger (default 2, as CSH).
	MinFrequency uint32
	// PartitionTuples is the partition budget a skewed key must be able to
	// dominate before skew handling pays off (default 4096, a
	// shared-memory/cache-sized partition).
	PartitionTuples int
}

func (c PlannerConfig) defaults() PlannerConfig {
	if c.SampleRate <= 0 {
		c.SampleRate = 0.01
	}
	if c.MinFrequency == 0 {
		c.MinFrequency = 2
	}
	if c.PartitionTuples <= 0 {
		c.PartitionTuples = 4096
	}
	return c
}

// EstimateOutput estimates the join output cardinality |R ⋈ S| from
// samples of both tables, using the cross-sample estimator:
//
//	Σ_k fR(k)·fS(k) / (rateR · rateS)
//
// over the sampled frequency tables. Under skew the estimate is driven by
// the heavy keys, which sampling captures reliably; it underestimates the
// contribution of near-unique keys (which a 1% sample rarely pairs up),
// so treat it as an estimate of the skew-dominated output — exactly the
// part that decides between the baseline and the skew-conscious join.
func EstimateOutput(r, s Relation, cfg PlannerConfig) uint64 {
	cfg = cfg.defaults()
	if r.Len() == 0 || s.Len() == 0 {
		return 0
	}
	stride := int(1 / cfg.SampleRate)
	if stride < 1 {
		stride = 1
	}
	count := func(rel Relation) (*freqtable.Counter, int) {
		c := freqtable.New(rel.Len()/stride + 1)
		n := 0
		for i := 0; i < rel.Len(); i += stride {
			c.Add(rel.Tuples[i].Key)
			n++
		}
		return c, n
	}
	cr, nr := count(r)
	cs, ns := count(s)
	if nr == 0 || ns == 0 {
		return 0
	}
	var crossSample uint64
	cr.Each(func(k relation.Key, fr uint32) {
		if fs := cs.Count(k); fs > 0 {
			crossSample += uint64(fr) * uint64(fs)
		}
	})
	scaleR := float64(r.Len()) / float64(nr)
	scaleS := float64(s.Len()) / float64(ns)
	return uint64(float64(crossSample) * scaleR * scaleS)
}

// RecommendFromStats picks between the baseline and skew-conscious
// algorithms from a relation's cached statistics, without rescanning the
// relation. It applies Recommend's rule with the exact top-key frequency
// standing in for the sampled estimate: the expected sampled frequency of
// the top key is MaxKeyFreq/stride, and the extrapolation back is
// MaxKeyFreq itself. The service layer's catalog uses this to plan `auto`
// joins from statistics computed once at registration time.
func RecommendFromStats(st RelationStats, cfg PlannerConfig) Recommendation {
	cfg = cfg.defaults()
	rec := Recommendation{CPU: Cbase, GPU: Gbase}
	if st.Tuples == 0 {
		return rec
	}
	stride := int(1 / cfg.SampleRate)
	if stride < 1 {
		stride = 1
	}
	rec.SampleSize = (st.Tuples + stride - 1) / stride
	rec.TopKeyEstimate = st.MaxKeyFreq
	expectedSampled := uint32(st.MaxKeyFreq / stride)
	if expectedSampled >= cfg.MinFrequency && st.MaxKeyFreq >= cfg.PartitionTuples/4 {
		rec.SkewDetected = true
		rec.CPU, rec.GPU = CSH, GSH
	}
	return rec
}

// Recommend samples R and picks between the baseline and skew-conscious
// algorithm for each architecture. It is the adaptive-dispatcher pattern
// for skewed hash joins, built from the paper's own detection machinery.
func Recommend(r Relation, cfg PlannerConfig) Recommendation {
	cfg = cfg.defaults()
	rec := Recommendation{CPU: Cbase, GPU: Gbase}
	if r.Len() == 0 {
		return rec
	}
	stride := int(1 / cfg.SampleRate)
	if stride < 1 {
		stride = 1
	}
	counter := freqtable.New(r.Len()/stride + 1)
	var topSampled uint32
	for i := 0; i < r.Len(); i += stride {
		if c := counter.Add(relation.Key(r.Tuples[i].Key)); c > topSampled {
			topSampled = c
		}
	}
	rec.SampleSize = (r.Len() + stride - 1) / stride
	rec.TopKeyEstimate = int(topSampled) * stride
	// Skewed enough to matter: the trigger frequency was reached in the
	// sample and the extrapolated count would fill a partition budget.
	if topSampled >= cfg.MinFrequency && rec.TopKeyEstimate >= cfg.PartitionTuples/4 {
		rec.SkewDetected = true
		rec.CPU, rec.GPU = CSH, GSH
	}
	return rec
}
