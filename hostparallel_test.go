package skewjoin

import "testing"

// TestOptionsHostParallelism sweeps the public HostParallelism knob over
// every GPU algorithm: any pool size — including the negative force-serial
// setting and a pool far larger than the host — must reproduce the serial
// result exactly, both the output summary and the modelled phase times.
func TestOptionsHostParallelism(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<14, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := Expected(r, s)
	dev := DeviceConfig{NumSMs: 16, SharedMemBytes: 4 << 10}
	for _, alg := range []Algorithm{Gbase, GSH, GSMJ} {
		serial, err := Join(alg, r, s, &Options{Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		if serial.Summary() != want {
			t.Fatalf("%s serial: summary %+v, oracle %+v", alg, serial.Summary(), want)
		}
		for _, hp := range []int{-1, 1, 4, 64} {
			res, err := Join(alg, r, s, &Options{Device: dev, HostParallelism: hp})
			if err != nil {
				t.Fatal(err)
			}
			if res.Summary() != want {
				t.Errorf("%s hostpar=%d: summary %+v, oracle %+v", alg, hp, res.Summary(), want)
			}
			if res.Total != serial.Total {
				t.Errorf("%s hostpar=%d: modelled total %v, serial %v", alg, hp, res.Total, serial.Total)
			}
			if len(res.Phases) != len(serial.Phases) {
				t.Fatalf("%s hostpar=%d: phase count %d, serial %d", alg, hp, len(res.Phases), len(serial.Phases))
			}
			for i := range res.Phases {
				if res.Phases[i] != serial.Phases[i] {
					t.Errorf("%s hostpar=%d: phase %+v, serial %+v", alg, hp, res.Phases[i], serial.Phases[i])
				}
			}
		}
	}
}

// TestOptionsDeviceConfigOverride pins the override semantics: a positive
// Options.HostParallelism wins over Device.HostParallelism, a negative one
// forces serial even when the device config asks for a pool, and zero
// defers to the device config.
func TestOptionsDeviceConfigOverride(t *testing.T) {
	cases := []struct {
		opt, dev, want int
	}{
		{0, 0, 0},
		{0, 3, 3},
		{2, 3, 2},
		{-1, 3, 0},
		{5, 0, 5},
	}
	for _, c := range cases {
		o := &Options{Device: DeviceConfig{HostParallelism: c.dev}, HostParallelism: c.opt}
		if got := o.deviceConfig().HostParallelism; got != c.want {
			t.Errorf("opt=%d dev=%d: resolved HostParallelism %d, want %d", c.opt, c.dev, got, c.want)
		}
	}
}
