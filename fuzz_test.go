package skewjoin

import (
	"encoding/binary"
	"testing"
)

// decodeRelations derives two small relations from fuzz input: the first
// byte splits the data into R and S halves, then every 2 bytes become one
// tuple (key from a reduced domain so collisions and duplicates are
// common, payload from the tuple index).
func decodeRelations(data []byte) (Relation, Relation) {
	if len(data) < 2 {
		return Relation{}, Relation{}
	}
	split := int(data[0])%(len(data)-1) + 1
	mk := func(b []byte, payloadBase int) Relation {
		n := len(b) / 2
		r := Relation{Tuples: make([]Tuple, n)}
		for i := 0; i < n; i++ {
			k := binary.LittleEndian.Uint16(b[2*i:])
			r.Tuples[i] = Tuple{
				Key:     Key(k % 257), // small domain: force duplicates
				Payload: Payload(payloadBase + i),
			}
		}
		return r
	}
	return mk(data[1:split+1], 0), mk(data[split+1:], 1000)
}

// FuzzJoinMatchesOracle is a differential fuzzer: every algorithm must
// produce the oracle's exact output count and checksum on arbitrary
// inputs. The seed corpus covers empty sides, single tuples, all-same-key
// and mixed data; `go test` runs the corpus, `go test -fuzz=Fuzz .`
// explores further.
func FuzzJoinMatchesOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 0})                // shared zero keys
	f.Add([]byte{2, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0})    // one hot key
	f.Add([]byte{8, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}) // mixed
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // keep each case fast
		}
		r, s := decodeRelations(data)
		want := Expected(r, s)
		for _, alg := range Algorithms() {
			opts := &Options{
				Threads: 2,
				// Small structures so tiny inputs still exercise multiple
				// partitions, sampling and skew paths.
				Bits1: 3, Bits2: 2,
				SampleRate: 0.5, OutBufCap: 8,
				Device: DeviceConfig{NumSMs: 4, SharedMemBytes: 1 << 10},
			}
			res, err := Join(alg, r, s, opts)
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if res.Summary() != want {
				t.Fatalf("%s: got %+v, want %+v (|R|=%d |S|=%d)",
					alg, res.Summary(), want, r.Len(), s.Len())
			}
		}
	})
}

// FuzzZipfGenerator checks generator invariants on arbitrary parameters.
func FuzzZipfGenerator(f *testing.F) {
	f.Add(uint16(10), uint8(5), int64(1))
	f.Add(uint16(1), uint8(0), int64(0))
	f.Fuzz(func(t *testing.T, universeRaw uint16, thetaRaw uint8, seed int64) {
		universe := int(universeRaw%3000) + 1
		theta := float64(thetaRaw%20) / 10
		r, err := GenerateZipf(universe, theta, seed, 1)
		if err != nil {
			t.Fatalf("GenerateZipf(%d, %g): %v", universe, theta, err)
		}
		if r.Len() != universe {
			t.Fatalf("len = %d, want %d", r.Len(), universe)
		}
		st := Stats(r)
		if st.DistinctKeys < 1 || st.DistinctKeys > universe {
			t.Fatalf("distinct keys %d out of range", st.DistinctKeys)
		}
	})
}
