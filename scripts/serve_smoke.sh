#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the join daemon.
#
# Builds skewjoind and skewjoinctl, starts the daemon on a private port
# with a deliberately tiny admission budget, then drives it with the
# client: register two joinable relations, run an auto join, force a 429
# by saturating the budget, and assert the /stats counters reconcile.
set -eu

PORT="${SKEWJOIND_SMOKE_PORT:-18321}"
ADDR="localhost:$PORT"
BIN="$(mktemp -d)"
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$BIN"' EXIT

go build -o "$BIN/skewjoind" ./cmd/skewjoind
go build -o "$BIN/skewjoinctl" ./cmd/skewjoinctl

# Budget 2, no queue: while one full-weight join runs, the next is shed.
"$BIN/skewjoind" -addr "$ADDR" -threads 2 -queue -1 &
DAEMON_PID=$!

ctl() { "$BIN/skewjoinctl" -addr "$ADDR" "$@"; }

# Wait for the daemon to come up.
i=0
until ctl stats >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "serve-smoke: daemon did not come up" >&2; exit 1; }
    sleep 0.1
done

echo "== register =="
ctl gen r 65536 0.9
ctl gen s 65536 0.9 -stream 1
ctl relations

echo "== auto join =="
ctl join r s | tee "$BIN/join.out"
grep -q 'matches=' "$BIN/join.out"

echo "== saturation: expect one rejection =="
# A long skewed join holds the whole budget...
ctl gen bigr 524288 1.0 -seed 7 >/dev/null
ctl gen bigs 524288 1.0 -seed 7 -stream 1 >/dev/null
ctl join bigr bigs >"$BIN/long.out" 2>&1 &
LONG_PID=$!
# ...wait until it is actually in flight, then an over-budget request must
# be shed with a clean 429.
i=0
until ctl stats | grep -q 'in_flight=1'; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "serve-smoke: long join never became in-flight" >&2; exit 1; }
    sleep 0.1
done
if ctl join r s >"$BIN/shed.out" 2>&1; then
    echo "serve-smoke: over-budget join was not rejected" >&2
    exit 1
fi
grep -q '429' "$BIN/shed.out"
wait "$LONG_PID"

echo "== stats reconcile =="
ctl stats | tee "$BIN/stats.out"
grep -q 'submitted=3' "$BIN/stats.out"
grep -q 'admitted=2' "$BIN/stats.out"
grep -q 'rejected=1' "$BIN/stats.out"
grep -q 'completed=2' "$BIN/stats.out"
grep -q 'in_flight=0' "$BIN/stats.out"

kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
echo "serve-smoke: OK"
