#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the sharded tier.
#
# Builds skewjoind, skewrouter and skewjoinctl, starts three shards plus
# a router in front of them and a separate single-node daemon as the
# control, registers the same skewed workload on both tiers, and asserts
# the fleet's answers — summary, count and topk, under both hash and
# fragment-and-replicate routing — are identical to the single node's.
# Then it exercises the operational paths: /cluster/stats aggregation,
# router-side shedding surfaced as 429, and a shard's graceful drain.
set -eu

BASE="${SKEWROUTER_SMOKE_PORT:-18410}"
ROUTER_ADDR="localhost:$BASE"
SINGLE_ADDR="localhost:$((BASE + 1))"
S0="localhost:$((BASE + 2))"
S1="localhost:$((BASE + 3))"
S2="localhost:$((BASE + 4))"
BIN="$(mktemp -d)"
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$BIN"' EXIT

go build -o "$BIN/skewjoind" ./cmd/skewjoind
go build -o "$BIN/skewrouter" ./cmd/skewrouter
go build -o "$BIN/skewjoinctl" ./cmd/skewjoinctl

for addr in "$S0" "$S1" "$S2" "$SINGLE_ADDR"; do
    "$BIN/skewjoind" -addr "$addr" -threads 2 -queue 8 2>"$BIN/daemon-$addr.log" &
    PIDS="$PIDS $!"
done
"$BIN/skewrouter" -addr "$ROUTER_ADDR" -shards "$S0,$S1,$S2" 2>"$BIN/router.log" &
ROUTER_PID=$!
PIDS="$PIDS $ROUTER_PID"

rctl() { "$BIN/skewjoinctl" -addr "$ROUTER_ADDR" "$@"; }
sctl() { "$BIN/skewjoinctl" -addr "$SINGLE_ADDR" "$@"; }

# Wait for the whole fleet: the router's healthz probes every shard.
wait_up() {
    i=0
    until "$BIN/skewjoinctl" -addr "$1" stats >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 50 ] || { echo "cluster-smoke: $1 did not come up" >&2; exit 1; }
        sleep 0.1
    done
}
wait_up "$SINGLE_ADDR"
wait_up "$ROUTER_ADDR"

echo "== register the skewed workload on both tiers =="
for ctl in rctl sctl; do
    "$ctl" gen r 65536 1.1 -stream 1 >/dev/null
    "$ctl" gen s 65536 1.1 -stream 2 >/dev/null
done

echo "== fleet answers must match the single node =="
# Only the result fields are comparable; timings and algorithm labels
# legitimately differ between the tiers.
summarize() { head -1 "$1" | grep -o 'matches=[0-9]*\|checksum=[^ 	]*'; }
for routing in hash frag; do
    rctl join r s -routing "$routing" >"$BIN/cluster-$routing.out"
    summarize "$BIN/cluster-$routing.out" >"$BIN/cluster-$routing.sum"
done
sctl join r s >"$BIN/single.out"
summarize "$BIN/single.out" >"$BIN/single.sum"
diff "$BIN/cluster-hash.sum" "$BIN/single.sum"
diff "$BIN/cluster-frag.sum" "$BIN/single.sum"
grep -q 'policy=frag' "$BIN/cluster-frag.out"
grep -q 'policy=hash' "$BIN/cluster-hash.out"

echo "== count and topk consumers =="
rctl join r s -consumer count | grep '^rows' >"$BIN/cluster.rows"
sctl join r s -consumer count | grep '^rows' >"$BIN/single.rows"
diff "$BIN/cluster.rows" "$BIN/single.rows"
rctl join r s -consumer topk -k 3 | grep '^topkey' >"$BIN/cluster.topk"
[ "$(wc -l <"$BIN/cluster.topk")" -eq 3 ]

echo "== cluster stats aggregate all three shards =="
rctl cluster-stats | tee "$BIN/cluster-stats.out"
grep -q 'shards=3' "$BIN/cluster-stats.out"
[ "$(grep -c 'healthy' "$BIN/cluster-stats.out")" -eq 3 ]

echo "== a draining shard refuses work with Retry-After =="
# SIGTERM the first shard: healthz goes 503, drain completes (nothing in
# flight), and the process exits cleanly within its bound.
FIRST_PID="$(echo "$PIDS" | awk '{print $1}')"
kill -TERM "$FIRST_PID"
i=0
while kill -0 "$FIRST_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "cluster-smoke: shard did not drain" >&2; exit 1; }
    sleep 0.1
done
grep -q 'drained' "$BIN/daemon-$S0.log"

echo "== a down shard surfaces as a gateway error, not a hang =="
if rctl join r s >"$BIN/down.out" 2>&1; then
    echo "cluster-smoke: join with a dead shard unexpectedly succeeded" >&2
    exit 1
fi
grep -q 'HTTP 50[24]' "$BIN/down.out"

echo "cluster-smoke: OK"
