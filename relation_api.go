package skewjoin

import "skewjoin/internal/relation"

// NewRelation builds a relation from parallel key and payload columns.
// It panics if the slices have different lengths.
func NewRelation(keys []Key, payloads []Payload) Relation {
	return relation.FromPairs(keys, payloads)
}

// RelationStats summarises a relation's key distribution: tuple and
// distinct-key counts and the most popular key with its frequency — the
// quantities the paper's skew analysis is framed in.
type RelationStats = relation.Stats

// KeyFreq is one heavy-hitter entry of RelationStats.TopKeys.
type KeyFreq = relation.KeyFreq

// Stats scans a relation and returns its key-distribution statistics.
func Stats(r Relation) RelationStats { return relation.ComputeStats(r) }

// SaveRelation writes a relation to path in the binary format shared by
// cmd/datagen and cmd/skewjoin.
func SaveRelation(r Relation, path string) error { return r.SaveFile(path) }

// LoadRelation reads a relation written by SaveRelation or cmd/datagen.
func LoadRelation(path string) (Relation, error) { return relation.LoadFile(path) }
