package skewjoin

import (
	"path/filepath"
	"testing"
)

func TestJoinAllAlgorithmsAgree(t *testing.T) {
	r, s, err := GenerateZipfPair(20000, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := Expected(r, s)
	if want.Matches == 0 {
		t.Fatal("workload produced no matches")
	}
	for _, alg := range Algorithms() {
		res, err := Join(alg, r, s, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Summary() != want {
			t.Errorf("%s: got %+v, want %+v", alg, res.Summary(), want)
		}
		if res.Algorithm != alg {
			t.Errorf("result algorithm = %s, want %s", res.Algorithm, alg)
		}
		if res.Modelled != alg.IsGPU() {
			t.Errorf("%s: Modelled = %v", alg, res.Modelled)
		}
		if res.Total <= 0 || len(res.Phases) == 0 {
			t.Errorf("%s: empty timing: %+v", alg, res)
		}
	}
}

func TestExtendedAlgorithmsIncludeSMJ(t *testing.T) {
	ext := ExtendedAlgorithms()
	if len(ext) != len(Algorithms())+3 || ext[len(ext)-3] != SMJ || ext[len(ext)-2] != GSMJ || ext[len(ext)-1] != SSJ {
		t.Fatalf("ExtendedAlgorithms = %v", ext)
	}
	for _, a := range Algorithms() {
		if a == SMJ || a == GSMJ || a == SSJ {
			t.Error("extensions must not be in the paper's algorithm set")
		}
	}
	r, s, err := GenerateZipfPair(20000, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Join(SMJ, r, s, &Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary() != Expected(r, s) {
		t.Errorf("SMJ: got %+v", res.Summary())
	}
	if res.Modelled || res.Phase("sort") <= 0 || res.Phase("merge") <= 0 {
		t.Errorf("SMJ result malformed: %+v", res)
	}
}

func TestJoinUnknownAlgorithm(t *testing.T) {
	r, s, err := GenerateZipfPair(100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Join("nope", r, s, nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestJoinOptionsRespected(t *testing.T) {
	r, s, err := GenerateZipfPair(20000, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := Expected(r, s)
	opts := &Options{
		Threads: 2, Bits1: 4, Bits2: 3,
		SampleRate: 0.05, SkewThreshold: 3, TopK: 2,
		Device:    DeviceConfig{SharedMemBytes: 8 << 10, NumSMs: 16},
		OutBufCap: 64,
	}
	for _, alg := range Algorithms() {
		res, err := Join(alg, r, s, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Summary() != want {
			t.Errorf("%s with options: got %+v, want %+v", alg, res.Summary(), want)
		}
	}
}

func TestResultPhaseLookup(t *testing.T) {
	r, s, err := GenerateZipfPair(5000, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Join(CSH, r, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, name := range []string{"sample", "partition", "nmjoin"} {
		d := res.Phase(name)
		if d <= 0 {
			t.Errorf("phase %q = %v", name, d)
		}
		sum += int64(d)
	}
	if sum != int64(res.Total) {
		t.Errorf("phase sum %d != total %d", sum, res.Total)
	}
	if res.Phase("nonexistent") != 0 {
		t.Error("missing phase returned non-zero")
	}
}

func TestGenerateZipfPairSharesUniverse(t *testing.T) {
	r, s, err := GenerateZipfPair(30000, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	rs, ss := Stats(r), Stats(s)
	if rs.MaxKey != ss.MaxKey {
		t.Errorf("top keys differ: %d vs %d — tables must share the interval array", rs.MaxKey, ss.MaxKey)
	}
}

func TestGenerateZipfValidation(t *testing.T) {
	if _, _, err := GenerateZipfPair(0, 0.5, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GenerateZipf(100, -1, 1, 1); err == nil {
		t.Error("negative theta accepted")
	}
}

func TestGenerateZipfStreams(t *testing.T) {
	a, err := GenerateZipf(1000, 0.8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateZipf(1000, 0.8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatal("same stream not deterministic")
		}
	}
}

func TestNewRelationAndStats(t *testing.T) {
	r := NewRelation([]Key{1, 1, 2}, []Payload{10, 11, 12})
	st := Stats(r)
	if st.Tuples != 3 || st.DistinctKeys != 2 || st.MaxKeyFreq != 2 || st.MaxKey != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSaveLoadRelation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.skjr")
	r := NewRelation([]Key{9, 8}, []Payload{1, 2})
	if err := SaveRelation(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRelation(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Tuples[0] != r.Tuples[0] {
		t.Errorf("loaded %+v", got.Tuples)
	}
}

func TestExpectedSelfJoinLowerBound(t *testing.T) {
	// A self-join output is at least the table cardinality (every tuple
	// matches itself through its key group).
	r, _, err := GenerateZipfPair(10000, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := Expected(r, r); got.Matches < uint64(r.Len()) {
		t.Errorf("self-join matches %d < %d tuples", got.Matches, r.Len())
	}
}

func TestIsGPU(t *testing.T) {
	gpu := map[Algorithm]bool{Cbase: false, CbaseNPJ: false, CSH: false, Gbase: true, GSH: true}
	for alg, want := range gpu {
		if alg.IsGPU() != want {
			t.Errorf("%s.IsGPU() = %v", alg, alg.IsGPU())
		}
	}
}

func TestDefaultThreadsPositive(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Errorf("DefaultThreads = %d", DefaultThreads())
	}
}
