// Command skewjoin runs one join — any of the paper's five algorithms or
// the sort-merge extension — over generated or file-backed tables,
// printing the per-phase breakdown and verifying the output against the
// oracle.
//
// Generated workload:
//
//	skewjoin -alg csh -n 262144 -zipf 0.9
//
// File-backed workload (see cmd/datagen):
//
//	skewjoin -alg gsh -r r.skjr -s s.skjr
//
// Compare every implementation on one workload:
//
//	skewjoin -alg all -n 262144 -zipf 0.9
//
// GPU algorithms (gbase, gsh) report modelled device time, marked with
// '*'; -gputrace additionally prints the simulator's per-kernel launch
// records (blocks, makespan, imbalance).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"skewjoin"
	"skewjoin/internal/bench"
	"skewjoin/internal/exec"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/gsh"
	"skewjoin/internal/gsmj"
	"skewjoin/internal/relation"
)

func main() {
	var (
		alg     = flag.String("alg", "csh", "algorithm: cbase, cbase-npj, csh, gbase, gsh, smj, gsmj, or all")
		n       = flag.Int("n", 1<<18, "tuples per generated table (ignored with -r/-s)")
		theta   = flag.Float64("zipf", 0.5, "zipf factor for generated tables")
		seed    = flag.Int64("seed", 42, "generator seed")
		rPath   = flag.String("r", "", "path to table R (binary relation file)")
		sPath   = flag.String("s", "", "path to table S (binary relation file)")
		threads = flag.Int("threads", 0, "CPU worker threads (default all cores)")
		backend = flag.String("backend", "", "execution backend: empty (run -alg as-is) or split (cost-model co-processing across CPU and simulated GPU; overrides -alg)")
		device  = flag.String("device", "a100", "simulated GPU profile: a100 (discrete flagship) or coupled (integrated GPU a small multiple faster than the host)")
		policy  = flag.String("policy", "", "split placement policy: model (default), static, cpu, or gpu (with -backend split)")
		frags   = flag.Int("fragments", 0, "max pieces to cut a dominating hot partition into across both backends (with -backend split; 0 = default 8, negative disables fragmentation)")
		hostpar = flag.Int("hostpar", 0, "host workers simulating GPU thread blocks (0 = serial; output is identical)")
		verify  = flag.Bool("verify", true, "check the output against the oracle")
		trace   = flag.Bool("gputrace", false, "print the simulator's per-kernel launch records (GPU algorithms)")
	)
	flag.Parse()

	var r, s skewjoin.Relation
	var err error
	switch {
	case *rPath != "" && *sPath != "":
		if r, err = relation.LoadFile(*rPath); err != nil {
			fatal(err)
		}
		if s, err = relation.LoadFile(*sPath); err != nil {
			fatal(err)
		}
	case *rPath == "" && *sPath == "":
		if r, s, err = skewjoin.GenerateZipfPair(*n, *theta, *seed); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("provide both -r and -s, or neither"))
	}

	var dev skewjoin.DeviceConfig
	switch *device {
	case "", "a100":
		// zero value = A100
	case "coupled":
		dev = skewjoin.CoupledDevice()
	default:
		fatal(fmt.Errorf("unknown device %q (want a100 or coupled)", *device))
	}

	if *alg == "all" && *backend == "" {
		compareAll(r, s, *threads, *hostpar, *verify)
		return
	}

	algorithm := skewjoin.Algorithm(*alg)
	opts := &skewjoin.Options{Threads: *threads, HostParallelism: *hostpar, Device: dev}
	switch *backend {
	case "":
	case "split":
		algorithm = skewjoin.Split
		opts.Fragments = *frags
		switch skewjoin.SplitPolicy(*policy) {
		case "", skewjoin.SplitPolicyModel, skewjoin.SplitPolicyStatic,
			skewjoin.SplitPolicyCPU, skewjoin.SplitPolicyGPU:
			opts.SplitPolicy = skewjoin.SplitPolicy(*policy)
		default:
			fatal(fmt.Errorf("unknown policy %q (want model, static, cpu, or gpu)", *policy))
		}
	default:
		fatal(fmt.Errorf("unknown backend %q (want split, or omit it)", *backend))
	}

	var res skewjoin.Result
	if *trace && algorithm.IsGPU() {
		// Run through the internal packages to reach the launch records.
		trc, tres := runWithTrace(algorithm, r, s, *hostpar)
		res = tres
		defer printTrace(trc)
	} else {
		res, err = skewjoin.Join(algorithm, r, s, opts)
		if err != nil {
			fatal(err)
		}
	}

	mark := ""
	if res.Modelled {
		mark = "*"
	}
	fmt.Printf("%s over %d x %d tuples: %d result tuples\n",
		res.Algorithm, r.Len(), s.Len(), res.Matches)
	for _, p := range res.Phases {
		fmt.Printf("  %-12s %s%s\n", p.Name, bench.FormatDuration(p.Duration), mark)
	}
	fmt.Printf("  %-12s %s%s\n", "total", bench.FormatDuration(res.Total), mark)
	if res.Modelled {
		fmt.Println("  (* modelled GPU time from the device simulator)")
	}
	if st := res.Split; st != nil && st.Plan != nil {
		if st.Plan.Split {
			fmt.Printf("  co-processing: %d partitions on cpu, %d on gpu (imbalance %.2fx)\n",
				len(st.Plan.CPUParts), len(st.Plan.GPUParts), st.Imbalance)
			if st.Fragmented() {
				fmt.Printf("  hot partition %d fragmented: build replicated, probe cut into %d cpu + %d gpu ranges\n",
					st.Plan.FragmentedPart, st.CPUFragments, st.GPUFragments)
			}
		} else {
			reason := ""
			if st.Plan.DegenerateReason != "" {
				reason = " (" + st.Plan.DegenerateReason + ")"
			}
			fmt.Printf("  co-processing: degenerated to %s-only%s\n", st.Plan.Degenerate, reason)
		}
		fmt.Printf("  join sides: cpu busy %s, gpu modelled %s (predicted makespan %s, actual %s)\n",
			bench.FormatDuration(time.Duration(st.CPUJoinNs)),
			bench.FormatDuration(time.Duration(st.GPUJoinNs+st.GPUTransferNs)),
			bench.FormatDuration(time.Duration(st.Plan.PredictedMakespanNs)),
			bench.FormatDuration(time.Duration(st.JoinSideNs())))
	}

	if *verify {
		want := skewjoin.Expected(r, s)
		if res.Summary() != want {
			fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: got %+v, want %+v\n", res.Summary(), want)
			os.Exit(1)
		}
		fmt.Println("verified: output count and checksum match the oracle")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "skewjoin:", err)
	os.Exit(1)
}

// compareAll runs every implementation (including extensions) on the same
// workload and prints a comparison table.
func compareAll(r, s skewjoin.Relation, threads, hostpar int, verify bool) {
	want := skewjoin.Expected(r, s)
	fmt.Printf("%d x %d tuples, %d expected results\n\n", r.Len(), s.Len(), want.Matches)
	fmt.Printf("%-11s %12s %8s %s\n", "algorithm", "total", "kind", "phases")
	failed := false
	for _, alg := range skewjoin.ExtendedAlgorithms() {
		res, err := skewjoin.Join(alg, r, s, &skewjoin.Options{Threads: threads, HostParallelism: hostpar})
		if err != nil {
			fatal(err)
		}
		kind := "wall"
		if res.Modelled {
			kind = "model"
		}
		var phases []string
		for _, p := range res.Phases {
			phases = append(phases, fmt.Sprintf("%s=%s", p.Name, bench.FormatDuration(p.Duration)))
		}
		status := ""
		if verify && res.Summary() != want {
			status = "  VERIFICATION FAILED"
			failed = true
		}
		fmt.Printf("%-11s %12s %8s %s%s\n",
			res.Algorithm, bench.FormatDuration(res.Total), kind, strings.Join(phases, " "), status)
	}
	if failed {
		os.Exit(1)
	}
}

// runWithTrace executes a GPU algorithm via its internal package so the
// simulator's launch records are available, and adapts the outcome to the
// public Result shape.
func runWithTrace(alg skewjoin.Algorithm, r, s skewjoin.Relation, hostpar int) ([]gpusim.LaunchRecord, skewjoin.Result) {
	dev := gpusim.Config{HostParallelism: hostpar}
	adapt := func(sumCount, sumChecksum uint64, phases []exec.Phase) skewjoin.Result {
		res := skewjoin.Result{
			Algorithm: alg,
			Matches:   sumCount,
			Checksum:  sumChecksum,
			Modelled:  true,
		}
		for _, p := range phases {
			res.Phases = append(res.Phases, skewjoin.Phase{Name: p.Name, Duration: p.Duration})
			res.Total += p.Duration
		}
		return res
	}
	switch alg {
	case skewjoin.Gbase:
		gr := gbase.Join(r, s, gbase.Config{Device: dev})
		return gr.Trace, adapt(gr.Summary.Count, gr.Summary.Checksum, gr.Phases)
	case skewjoin.GSH:
		gr := gsh.Join(r, s, gsh.Config{Device: dev})
		return gr.Trace, adapt(gr.Summary.Count, gr.Summary.Checksum, gr.Phases)
	case skewjoin.GSMJ:
		gr := gsmj.Join(r, s, gsmj.Config{Device: dev})
		return gr.Trace, adapt(gr.Summary.Count, gr.Summary.Checksum, gr.Phases)
	default:
		fatal(fmt.Errorf("-gputrace requires a GPU algorithm, got %q", alg))
		return nil, skewjoin.Result{}
	}
}

// printTrace renders the launch records as a table.
func printTrace(trc []gpusim.LaunchRecord) {
	fmt.Println("\nGPU kernel trace (modelled):")
	fmt.Printf("  %-26s %8s %12s %14s %10s\n", "kernel", "blocks", "makespan", "max-block cyc", "imbalance")
	for _, rec := range trc {
		fmt.Printf("  %-26s %8d %12s %14.3g %9.2fx\n",
			rec.Name, rec.Blocks,
			bench.FormatDuration(rec.Duration),
			rec.MaxBlock,
			rec.Imbalance)
	}
}
