// Command skewjoind is the join daemon: it serves internal/service over
// plain HTTP, owning a catalog of named relations and admitting concurrent
// join requests against a shared worker-thread budget.
//
//	skewjoind -addr :8080 -threads 8 -queue 16
//
// Relations can be preloaded at startup (name=path pairs) and registered
// at runtime via POST /relations; see cmd/skewjoinctl for a client.
// Path-based registration over HTTP is enabled (the daemon is an operator
// tool trusted with its own filesystem).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skewjoin"
	"skewjoin/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		threads = flag.Int("threads", 0, "worker-thread budget shared by all joins (default all cores)")
		queue   = flag.Int("queue", 16, "admission queue depth; beyond it requests are shed with 429 (negative disables queueing)")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-request deadline (queue wait + execution)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown bound: how long SIGTERM waits for in-flight joins before forcing exit")
		preload = flag.String("preload", "", "comma-separated name=path pairs of relation files to register at startup")
	)
	flag.Parse()

	cfg := service.Config{
		ThreadBudget:     *threads,
		MaxQueue:         *queue,
		DefaultTimeout:   *timeout,
		AllowPathLoading: true,
	}
	srv := service.New(cfg)

	if *preload != "" {
		for _, pair := range strings.Split(*preload, ",") {
			name, path, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("skewjoind: -preload entry %q is not name=path", pair)
			}
			e, err := srv.Catalog().RegisterFile(name, path)
			if err != nil {
				log.Fatalf("skewjoind: preload %q: %v", name, err)
			}
			log.Printf("preloaded %q: %d tuples from %s", name, e.Stats.Tuples, path)
		}
	}

	budget := *threads
	if budget <= 0 {
		budget = skewjoin.DefaultThreads()
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// Serve until SIGINT/SIGTERM, then drain: stop admitting new joins
	// (healthz goes not-ready so a router pulls this shard out of
	// rotation), wait out the in-flight ones bounded by -drain, and only
	// then close the listener.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("draining (bound %v)", *drain)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.DrainJoins(ctx); err != nil {
			log.Printf("drain: giving up on in-flight joins: %v", err)
		} else {
			log.Printf("drained")
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
			if cerr := httpSrv.Close(); cerr != nil {
				log.Printf("close: %v", cerr)
			}
		}
	}()

	log.Printf("skewjoind listening on %s (budget %d threads, queue %d)", *addr, budget, *queue)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "skewjoind: %v\n", err)
		os.Exit(1)
	}
	<-done
}
