// Command datagen generates the paper's zipf-skewed join workloads and
// writes them as binary relation files for cmd/skewjoin and the examples.
//
// Usage:
//
//	datagen -n 262144 -zipf 0.9 -seed 42 -out-r r.skjr -out-s s.skjr
//
// R and S are drawn from the same interval and unique-key arrays (the
// paper's highly skewed model), so the generated pair is exactly the
// workload of the evaluation section.
package main

import (
	"flag"
	"fmt"
	"os"

	"skewjoin"
	"skewjoin/internal/relation"
)

func main() {
	var (
		n     = flag.Int("n", 1<<18, "tuples per table")
		theta = flag.Float64("zipf", 0.0, "zipf factor (0 = uniform)")
		seed  = flag.Int64("seed", 42, "generator seed")
		outR  = flag.String("out-r", "r.skjr", "output path for table R")
		outS  = flag.String("out-s", "s.skjr", "output path for table S")
		stats = flag.Bool("stats", true, "print key-distribution statistics")
	)
	flag.Parse()

	r, s, err := skewjoin.GenerateZipfPair(*n, *theta, *seed)
	if err != nil {
		fatal(err)
	}
	if err := r.SaveFile(*outR); err != nil {
		fatal(err)
	}
	if err := s.SaveFile(*outS); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s and %s: %d tuples each, zipf %.2f, seed %d\n",
		*outR, *outS, *n, *theta, *seed)

	if *stats {
		for _, t := range []struct {
			name string
			rel  skewjoin.Relation
		}{{"R", r}, {"S", s}} {
			st := relation.ComputeStats(t.rel)
			fmt.Printf("%s: %d distinct keys, top key %d appears %d times (%.2f%%)\n",
				t.name, st.DistinctKeys, st.MaxKey, st.MaxKeyFreq,
				100*float64(st.MaxKeyFreq)/float64(st.Tuples))
		}
		exp := skewjoin.Expected(r, s)
		fmt.Printf("join output: %d tuples\n", exp.Matches)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
