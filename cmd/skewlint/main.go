// Command skewlint runs the project's custom static-analysis pass over
// the module: invariants the Go compiler and vet cannot see but the join
// engine depends on (atomic-consistency, ctx-propagation, hot-path-alloc,
// lock-discipline — see internal/lint).
//
// Usage:
//
//	skewlint [-json] [packages...]
//
// Packages default to ./... resolved against the enclosing module.
// Findings print as file:line:col: [analyzer] message; with -json a
// machine-readable document is emitted instead. Exit status is 0 when
// clean, 1 on findings, 2 on load or type-check errors. Suppress a
// finding in place with `//skewlint:ignore <rule>` on or directly above
// the offending line (a rationale may follow after " -- ").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"skewjoin/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: skewlint [-json] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "skewlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skewlint:", err)
		os.Exit(2)
	}
	findings := lint.Run(loader, pkgs, lint.DefaultConfig())

	if *jsonOut {
		out := struct {
			Findings []lint.Finding `json:"findings"`
		}{Findings: findings}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "skewlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "skewlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}
