// Command skewlint runs the project's custom static-analysis pass over
// the module: invariants the Go compiler and vet cannot see but the join
// engine depends on. Eight analyzers ship today — the per-statement four
// (atomic-consistency, ctx-propagation, hot-path-alloc, lock-discipline)
// and the CFG/dataflow four (lock-order, goroutine-leak, err-drop,
// retry-discipline) — see internal/lint.
//
// Usage:
//
//	skewlint [-json] [-unused-ignores] [packages...]
//
// Packages default to ./... resolved against the enclosing module.
// Findings print as file:line:col: [analyzer] message; with -json a
// machine-readable document is emitted instead. Exit status is 0 when
// clean, 1 on findings, 2 on load or type-check errors. Suppress a
// finding in place with `//skewlint:ignore <rule>` on or directly above
// the offending line (a rationale may follow after " -- ").
// -unused-ignores additionally reports every ignore directive that no
// longer suppresses anything, so stale suppressions cannot linger.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"skewjoin/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	unusedIgnores := flag.Bool("unused-ignores", false, "report //skewlint:ignore directives that suppress nothing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: skewlint [-json] [-unused-ignores] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "skewlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skewlint:", err)
		os.Exit(2)
	}
	cfg := lint.DefaultConfig()
	cfg.ReportUnusedIgnores = *unusedIgnores
	findings := lint.Run(loader, pkgs, cfg)

	if *jsonOut {
		out := struct {
			Findings []lint.Finding `json:"findings"`
		}{Findings: findings}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "skewlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "skewlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}
