// Command skewrouter is the cluster front door: a thin router over N
// skewjoind shards speaking the same HTTP API as a single daemon. It
// consistent-hashes registered relations across the shards, plans joins
// from cached statistics (carving heavy hitters out fragment-and-replicate
// style when the skew pays for it), fans the work out, merges the
// partials, and sheds load with 429 + Retry-After when the fleet is busy.
//
//	skewrouter -addr :8090 -shards http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Every shard should be a plain skewjoind; the router owns the catalog
// placement, so register relations through the router, not the shards.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"skewjoin/internal/cluster"
)

func main() {
	var (
		addr       = flag.String("addr", ":8090", "listen address")
		shards     = flag.String("shards", "", "comma-separated shard base URLs, in ring order (required)")
		hotFactor  = flag.Float64("hot-factor", 0, "fragment-and-replicate threshold multiplier (default 1.5)")
		maxHot     = flag.Int("max-hot-keys", 0, "cap on carved-out hot keys per join (default 16)")
		timeout    = flag.Duration("shard-timeout", 30*time.Second, "per shard-call attempt deadline")
		retries    = flag.Int("retries", 2, "retry bound for transient shard failures (429/5xx/transport)")
		backoff    = flag.Duration("retry-backoff", 100*time.Millisecond, "base back-off between retries (a shard's Retry-After overrides upward)")
		budget     = flag.Int("shard-budget", 4, "concurrent fleet joins admitted per shard before queueing")
		queue      = flag.Int("shard-queue", 8, "admission queue depth per shard; beyond it requests are shed with 429 (negative disables queueing)")
		reqTimeout = flag.Duration("timeout", 60*time.Second, "default whole-request deadline for joins without timeout_ms")
	)
	flag.Parse()

	if *shards == "" {
		fmt.Fprintln(os.Stderr, "skewrouter: -shards is required (comma-separated shard URLs)")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls = append(urls, u)
	}

	rt, err := cluster.NewRouter(cluster.Config{
		ShardURLs:      urls,
		HotFactor:      *hotFactor,
		MaxHotKeys:     *maxHot,
		ShardTimeout:   *timeout,
		Retries:        *retries,
		RetryBackoff:   *backoff,
		ShardBudget:    *budget,
		ShardQueue:     *queue,
		DefaultTimeout: *reqTimeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skewrouter: %v\n", err)
		os.Exit(2)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
			if cerr := httpSrv.Close(); cerr != nil {
				log.Printf("close: %v", cerr)
			}
		}
	}()

	log.Printf("skewrouter listening on %s, %d shards: %s", *addr, len(urls), strings.Join(urls, ", "))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "skewrouter: %v\n", err)
		os.Exit(1)
	}
	<-done
}
