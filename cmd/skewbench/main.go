// Command skewbench regenerates the paper's evaluation — Figure 1,
// Figures 4a/4b, Table I, the scale-up experiment and the headline speedup
// summary — plus this repository's extension experiments: the §III skew
// analysis, one-sided S skew (sskew), sort-vs-hash (sortvshash), per-join
// memory footprints (memory) and the A/B sweeps of the three hot-path
// overhauls (partition, join and gpu; excluded from "all" — run them
// explicitly, typically via make bench-partition / make bench-join /
// make bench-gpu, which write BENCH_partition.json / BENCH_join.json /
// BENCH_gpu.json).
//
// The coproc experiment benchmarks the cost-model-driven CPU/GPU split
// executor against its pinned single-backend controls on the coupled
// device profile, writing BENCH_coproc.json via make bench-coproc. The
// shard experiment benchmarks the cluster router's fragment-and-replicate
// routing against hash placement (plus an A/A control) on an in-process
// 3-shard fleet, writing BENCH_shard.json via make bench-shard. The
// stream experiment benchmarks the streaming symmetric join's
// time-to-first-result and time-to-limit against the blocking control
// (plus an A/A control), writing BENCH_stream.json via make bench-stream.
//
// Usage:
//
//	skewbench [-exp fig1|fig4a|fig4b|table1|speedup|large|
//	                analysis|sskew|sortvshash|memory|partition|join|gpu|coproc|shard|stream|all]
//	          [-n tuples] [-threads k] [-seed s] [-zipf list] [-shm KiB]
//	          [-json] [-plot] [-out file.json]
//
// GPU times (marked '*') are modelled by the device simulator; CPU times
// are wall-clock. Every run is verified against the join oracle; any
// mismatch is printed and exits non-zero. With -json the reports are
// emitted as a single JSON object keyed by experiment name; with -plot the
// figure reports are also rendered as log-scale ASCII charts.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"skewjoin/internal/bench"
)

// printer is implemented by every report type.
type printer interface {
	Fprint(w io.Writer)
}

// plotter is implemented by figure-style reports.
type plotter interface {
	Plot(w io.Writer)
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: fig1, fig4a, fig4b, table1, speedup, large, analysis, sskew, sortvshash, memory, partition, join, gpu, coproc, shard, stream, or all")
		tuples  = flag.Int("n", 0, "tuples per input table (default $SKEWJOIN_TUPLES or 262144)")
		threads = flag.Int("threads", 0, "CPU worker threads (default all cores)")
		seed    = flag.Int64("seed", 42, "workload seed")
		repeats = flag.Int("repeats", 0, "timed runs per measured configuration, best kept (default 3)")
		zipfStr = flag.String("zipf", "", "comma-separated zipf factors (default 0.0..1.0 step 0.1)")
		shmKB   = flag.Int("shm", 0, "simulated GPU shared memory per block, KiB (default 64 = A100-like); shrink to match the paper's skew-to-capacity ratio at small table sizes")
		minWin  = flag.Int64("minwin", 0, "split planner absolute win floor in ms for -exp coproc (default 0 = engine default 25ms); smoke runs at tiny -n lower it to ~1ms")
		asJSON  = flag.Bool("json", false, "emit reports as JSON instead of text tables")
		plot    = flag.Bool("plot", false, "also render figure reports as log-scale ASCII charts")
		outFile = flag.String("out", "", "also write the report as JSON to this file (e.g. BENCH_partition.json; single -exp runs only)")
	)
	flag.Parse()

	cfg := bench.Config{Tuples: *tuples, Threads: *threads, Seed: *seed, Repeats: *repeats}
	if *shmKB > 0 {
		cfg.Device.SharedMemBytes = *shmKB << 10
	}
	if *minWin > 0 {
		cfg.SplitMinWinNs = *minWin * 1e6
	}
	if *zipfStr != "" {
		zs, err := parseZipfs(*zipfStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skewbench:", err)
			os.Exit(2)
		}
		cfg.Zipfs = zs
		cfg.TableZipfs = zs
	}

	names := []string{"fig1", "fig4a", "fig4b", "table1", "speedup", "large", "analysis", "sskew", "sortvshash", "memory"}
	if *exp != "all" {
		names = []string{*exp}
	}

	failed := false
	jsonOut := map[string]any{}
	for _, name := range names {
		rep, errs, err := run(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skewbench:", err)
			os.Exit(1)
		}
		failed = failed || errs
		if *outFile != "" && *exp != "all" {
			if err := writeJSON(*outFile, rep); err != nil {
				fmt.Fprintln(os.Stderr, "skewbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "skewbench: wrote %s\n", *outFile)
		}
		if *asJSON {
			jsonOut[name] = rep
		} else {
			rep.Fprint(os.Stdout)
			if p, ok := rep.(plotter); ok && *plot {
				p.Plot(os.Stdout)
			}
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "skewbench:", err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// run executes one experiment, returning its report and whether any
// verification errors occurred.
func run(name string, cfg bench.Config) (printer, bool, error) {
	switch name {
	case "fig1":
		rep, err := bench.Fig1(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "fig4a":
		rep, err := bench.Fig4a(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "fig4b":
		rep, err := bench.Fig4b(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "table1":
		rep, err := bench.Table1(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "speedup":
		rep, err := bench.Speedup(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "large":
		rep, err := bench.Large(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "analysis":
		rep, err := bench.Analysis(cfg)
		return rep, false, err
	case "sskew":
		rep, err := bench.SSkew(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "sortvshash":
		rep, err := bench.SortVsHash(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "memory":
		rep, err := bench.Memory(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "partition":
		rep, err := bench.PartitionBench(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "join":
		rep, err := bench.JoinBench(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "gpu":
		rep, err := bench.GPUBench(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "coproc":
		rep, err := bench.CoprocBench(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "shard":
		rep, err := bench.ShardBench(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	case "stream":
		rep, err := bench.StreamBench(cfg)
		return rep, rep != nil && len(rep.Errors) > 0, err
	default:
		return nil, false, fmt.Errorf("unknown experiment %q", name)
	}
}

// writeJSON writes v as indented JSON to path, atomically: parent
// directories are created as needed, the JSON is written to a temporary
// file in the target directory, fsynced, and renamed into place — an
// interrupted run never leaves a torn or half-written report behind.
func writeJSON(path string, v any) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		return errors.Join(err, f.Close(), os.Remove(tmp))
	}
	// CreateTemp defaults to 0600; match os.Create's umask-filtered 0666.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		return errors.Join(err, os.Remove(tmp))
	}
	if err := os.Rename(tmp, path); err != nil {
		return errors.Join(err, os.Remove(tmp))
	}
	return nil
}

func parseZipfs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		z, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad zipf factor %q", part)
		}
		out = append(out, z)
	}
	return out, nil
}
