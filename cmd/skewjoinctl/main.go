// Command skewjoinctl is the line-oriented client for skewjoind: thin
// subcommands over the daemon's HTTP+JSON API, printing one line per fact
// so output composes with grep/awk.
//
//	skewjoinctl gen r 262144 0.9            # register a generated relation
//	skewjoinctl gen s 262144 0.9 -stream 1  # same key universe, new stream
//	skewjoinctl load orders /data/orders.skjr
//	skewjoinctl relations
//	skewjoinctl join r s                    # auto-planned
//	skewjoinctl join r s -alg cbase -threads 2 -consumer topk -k 3
//	skewjoinctl stats
//	skewjoinctl drop r
//
// The daemon address comes from -addr (before the subcommand) or the
// SKEWJOIND_ADDR environment variable, defaulting to localhost:8080. The
// same client talks to a skewrouter: point -addr at the router, use `join
// -routing` to pin a cluster routing policy and `cluster-stats` for the
// fleet view.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"skewjoin/internal/cluster"
	"skewjoin/internal/service"
)

func main() {
	addr := flag.String("addr", defaultAddr(), "daemon or router address (host:port)")
	timeout := flag.Duration("timeout", 0, "whole-request timeout (0 = no client-side bound)")
	retries := flag.Int("retries", 0, "retries on 429/503/transport failures, honouring the server's Retry-After")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	c := &client{
		base:    "http://" + *addr,
		hc:      &http.Client{Timeout: *timeout},
		retries: *retries,
	}
	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "gen":
		err = c.gen(rest)
	case "load":
		err = c.load(rest)
	case "relations":
		err = c.relations()
	case "drop":
		err = c.drop(rest)
	case "join":
		err = c.join(rest)
	case "stats":
		err = c.stats()
	case "cluster-stats":
		err = c.clusterStats()
	default:
		fmt.Fprintf(os.Stderr, "skewjoinctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "skewjoinctl: %v\n", err)
		os.Exit(1)
	}
}

func defaultAddr() string {
	if a := os.Getenv("SKEWJOIND_ADDR"); a != "" {
		return a
	}
	return "localhost:8080"
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: skewjoinctl [-addr host:port] [-timeout D] [-retries N] <command> [args]

commands:
  gen <name> <n> <theta> [-seed N] [-stream N]   register a generated zipf relation
  load <name> <path>                             register a relation file (server-local path)
  relations                                      list the catalog
  drop <name>                                    remove a relation
  join <r> <s> [-alg A] [-backend cpu|gpu] [-threads N] [-timeout-ms N]
               [-consumer summary|count|topk|groups] [-k N] [-limit N]
               [-routing auto|hash|frag]         (routing is router-only)
  stats                                          admission counters and latency histograms
  cluster-stats                                  per-shard fleet view (router only)
`)
}

type client struct {
	base    string
	hc      *http.Client
	retries int
}

// httpError is a non-2xx response: the server's own message, the status,
// and its Retry-After ask when it named one.
type httpError struct {
	status     int
	retryAfter time.Duration
	msg        string
}

func (e *httpError) Error() string {
	if e.retryAfter > 0 {
		return fmt.Sprintf("%s (HTTP %d, retry after %v)", e.msg, e.status, e.retryAfter)
	}
	return fmt.Sprintf("%s (HTTP %d)", e.msg, e.status)
}

// retryable mirrors the router's transient class: shed load and gateway
// failures may clear; other 4xx/5xx are a request bug and retrying would
// only repeat them.
func (e *httpError) retryable() bool {
	switch e.status {
	case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// call sends body (nil for none) and decodes the JSON response into out,
// turning every non-2xx status into a descriptive error. With -retries set
// it retries transport failures and transient statuses, waiting out the
// server's Retry-After when one was given.
func (c *client) call(method, path string, body, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.once(method, path, body, out)
		if err == nil || attempt >= c.retries {
			return err
		}
		wait := time.Duration(attempt+1) * 200 * time.Millisecond
		if he, ok := err.(*httpError); ok {
			if !he.retryable() {
				return err
			}
			if he.retryAfter > wait {
				wait = he.retryAfter
			}
		}
		fmt.Fprintf(os.Stderr, "skewjoinctl: %v; retrying in %v (%d/%d)\n", err, wait, attempt+1, c.retries)
		time.Sleep(wait)
	}
}

func (c *client) once(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		he := &httpError{status: resp.StatusCode}
		if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs > 0 {
			he.retryAfter = time.Duration(secs) * time.Second
		}
		var e service.ErrorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			he.msg = e.Error
		} else {
			he.msg = string(bytes.TrimSpace(raw))
		}
		return he
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func printRelation(info service.RelationInfo) {
	fmt.Printf("%s\ttuples=%d\tdistinct=%d\tmax_key_freq=%d\tsource=%s\n",
		info.Name, info.Tuples, info.DistinctKeys, info.MaxKeyFreq, info.Source)
}

func (c *client) gen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	seed := fs.Int64("seed", 42, "generator seed (same seed = joinable key universe)")
	stream := fs.Int64("stream", 0, "generator stream within the seed's universe")
	args, err := splitPositional(fs, args, 3)
	if err != nil {
		return fmt.Errorf("gen: %v (want: gen <name> <n> <theta>)", err)
	}
	n, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("gen: n %q: %v", args[1], err)
	}
	theta, err := strconv.ParseFloat(args[2], 64)
	if err != nil {
		return fmt.Errorf("gen: theta %q: %v", args[2], err)
	}
	req := service.RegisterRequest{
		Name:     args[0],
		Generate: &service.GenerateSpec{N: n, Zipf: theta, Seed: *seed, Stream: *stream},
	}
	var info service.RelationInfo
	if err := c.call("POST", "/relations", req, &info); err != nil {
		return err
	}
	printRelation(info)
	return nil
}

func (c *client) load(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("load: want: load <name> <path>")
	}
	req := service.RegisterRequest{Name: args[0], Path: args[1]}
	var info service.RelationInfo
	if err := c.call("POST", "/relations", req, &info); err != nil {
		return err
	}
	printRelation(info)
	return nil
}

func (c *client) relations() error {
	var infos []service.RelationInfo
	if err := c.call("GET", "/relations", nil, &infos); err != nil {
		return err
	}
	for _, info := range infos {
		printRelation(info)
	}
	return nil
}

func (c *client) drop(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("drop: want: drop <name>")
	}
	if err := c.call("DELETE", "/relations/"+args[0], nil, nil); err != nil {
		return err
	}
	fmt.Printf("dropped %s\n", args[0])
	return nil
}

func (c *client) join(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	alg := fs.String("alg", "auto", "algorithm, or auto for planner dispatch")
	backend := fs.String("backend", "", "auto target: cpu (default) or gpu")
	threads := fs.Int("threads", 0, "thread weight against the server budget (0 = whole budget)")
	timeoutMS := fs.Int64("timeout-ms", 0, "request deadline in ms (0 = server default)")
	consumer := fs.String("consumer", "", "result consumer: summary (default), count, topk, or groups")
	k := fs.Int("k", 0, "heavy-hitter count for -consumer topk")
	limit := fs.Int("limit", 0, "stop after at least N results (CPU operators only; 0 = full join)")
	routing := fs.String("routing", "", "cluster routing policy: auto, hash or frag (router only; a plain daemon rejects it)")
	args, err := splitPositional(fs, args, 2)
	if err != nil {
		return fmt.Errorf("join: %v (want: join <r> <s>)", err)
	}
	req := service.JoinRequest{
		R: args[0], S: args[1],
		Algorithm: *alg, Backend: *backend, Threads: *threads,
		TimeoutMS: *timeoutMS, Consumer: *consumer, K: *k,
		Limit: *limit, Routing: *routing,
	}
	var resp cluster.JoinResponse
	if err := c.call("POST", "/join", req, &resp); err != nil {
		return err
	}
	mode := "pinned"
	if resp.Auto {
		mode = "auto"
	}
	fmt.Printf("algorithm=%s (%s)\tmatches=%d\tchecksum=%#x\twait_ms=%.2f\tjoin_ms=%.2f\n",
		resp.Algorithm, mode, resp.Matches, resp.Checksum, resp.WaitMS, resp.JoinMS)
	if p := resp.Planner; p != nil {
		fmt.Printf("planner\tskew_detected=%v\ttop_key_estimate=%d\tsample_size=%d\tstreaming=%v\n",
			p.SkewDetected, p.TopKeyEstimate, p.SampleSize, p.Streaming)
	}
	if st := resp.Stream; st != nil {
		fmt.Printf("stream\tfirst_result_ms=%.3f\tstaged=%d\tlimit_hit=%v", st.FirstResultMS, st.Staged, st.LimitHit)
		if st.LimitHit {
			fmt.Printf("\tlimit_ms=%.3f", st.LimitMS)
		}
		if st.Chunks > 0 {
			fmt.Printf("\tchunks=%d", st.Chunks)
		}
		fmt.Println()
	}
	for _, ph := range resp.Phases {
		fmt.Printf("phase\t%s\t%.3fms\n", ph.Name, ph.MS)
	}
	if resp.Rows != nil {
		fmt.Printf("rows\t%d\n", *resp.Rows)
	}
	for _, kw := range resp.TopKeys {
		fmt.Printf("topkey\t%d\tweight=%d\n", kw.Key, kw.Weight)
	}
	for _, kw := range resp.Groups {
		fmt.Printf("group\t%d\tcount=%d\n", kw.Key, kw.Weight)
	}
	if cl := resp.Cluster; cl != nil {
		fmt.Printf("cluster\tpolicy=%s\thot_keys=%d\n", cl.Policy, len(cl.HotKeys))
		for _, sh := range cl.Shards {
			fmt.Printf("shard\t%d\tcalls=%d\tmatches=%d\tjoin_ms=%.2f\tbusy_ms=%.2f\n",
				sh.Shard, sh.Calls, sh.Matches, sh.JoinMS, sh.BusyMS)
		}
	}
	return nil
}

func (c *client) clusterStats() error {
	var st cluster.StatsResponse
	if err := c.call("GET", "/cluster/stats", nil, &st); err != nil {
		return err
	}
	fmt.Printf("fleet\tshards=%d\trelations=%d\tjoins=%d\tshed=%d\n",
		len(st.Shards), len(st.Relations), st.Joins, st.Shed)
	for _, sh := range st.Shards {
		state := "healthy"
		if !sh.Healthy {
			state = "unreachable: " + sh.Error
		}
		fmt.Printf("shard\t%d\t%s\tewma_join_ms=%.2f\tin_flight=%d\tqueued=%d\t%s\n",
			sh.Shard, sh.URL, sh.EwmaJoinMS, sh.Admission.InFlight, sh.Admission.Queued, state)
		if sh.Stats != nil {
			a := sh.Stats.Admission
			fmt.Printf("shard\t%d\tadmission\tsubmitted=%d\tadmitted=%d\trejected=%d\tcompleted=%d\n",
				sh.Shard, a.Submitted, a.Admitted, a.Rejected, a.Completed)
		}
	}
	return nil
}

func (c *client) stats() error {
	var st service.StatsResponse
	if err := c.call("GET", "/stats", nil, &st); err != nil {
		return err
	}
	a := st.Admission
	fmt.Printf("admission\tbudget=%d\tqueue=%d\tin_use=%d\tin_flight=%d\tqueued=%d\n",
		a.ThreadBudget, a.MaxQueue, a.ThreadsInUse, a.InFlight, a.Queued)
	fmt.Printf("counters\tsubmitted=%d\tadmitted=%d\trejected=%d\trejected_full=%d\trejected_timeout=%d\tcompleted=%d\n",
		a.Submitted, a.Admitted, a.Rejected, a.RejectedFull, a.RejectedTimeout, a.Completed)
	fmt.Printf("relations\t%d registered\n", len(st.Relations))
	algs := make([]string, 0, len(st.Algorithms))
	for alg := range st.Algorithms {
		algs = append(algs, alg)
	}
	sort.Strings(algs)
	for _, alg := range algs {
		as := st.Algorithms[alg]
		mean := 0.0
		if as.Count > 0 {
			mean = as.TotalMS / float64(as.Count)
		}
		fmt.Printf("algorithm\t%s\tcount=%d\terrors=%d\tmean_ms=%.2f\tmax_ms=%.2f\n",
			alg, as.Count, as.Errors, mean, as.MaxMS)
		if fr := as.FirstResult; fr != nil {
			fmt.Printf("first_result\t%s\tcount=%d\tmean_ms=%.3f\tmax_ms=%.3f\tlimit_hits=%d\n",
				alg, fr.Count, fr.TotalMS/float64(fr.Count), fr.MaxMS, as.LimitHits)
		}
	}
	return nil
}

// splitPositional parses flags that may follow n positional arguments
// (`join r s -alg cbase`) and returns the positionals.
func splitPositional(fs *flag.FlagSet, args []string, n int) ([]string, error) {
	if len(args) < n {
		return nil, fmt.Errorf("want %d arguments", n)
	}
	if err := fs.Parse(args[n:]); err != nil {
		return nil, err
	}
	if fs.NArg() != 0 {
		return nil, fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	return args[:n], nil
}
