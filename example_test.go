package skewjoin_test

import (
	"fmt"

	"skewjoin"
)

// The basic flow: generate the paper's workload, join, verify.
func ExampleJoin() {
	r, s, _ := skewjoin.GenerateZipfPair(50000, 0.9, 42)
	res, err := skewjoin.Join(skewjoin.CSH, r, s, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", res.Summary() == skewjoin.Expected(r, s))
	fmt.Println("phases:", len(res.Phases))
	// Output:
	// verified: true
	// phases: 3
}

// All five algorithms produce identical output summaries.
func ExampleAlgorithms() {
	r, s, _ := skewjoin.GenerateZipfPair(20000, 1.0, 7)
	want := skewjoin.Expected(r, s)
	for _, alg := range skewjoin.Algorithms() {
		res, _ := skewjoin.Join(alg, r, s, nil)
		fmt.Printf("%s ok=%v gpu=%v\n", alg, res.Summary() == want, res.Modelled)
	}
	// Output:
	// cbase ok=true gpu=false
	// cbase-npj ok=true gpu=false
	// csh ok=true gpu=false
	// gbase ok=true gpu=true
	// gsh ok=true gpu=true
}

// The planner samples R and recommends algorithms per architecture.
func ExampleRecommend() {
	skewed, _, _ := skewjoin.GenerateZipfPair(100000, 1.0, 42)
	uniform, _, _ := skewjoin.GenerateZipfPair(100000, 0.0, 42)
	a := skewjoin.Recommend(skewed, skewjoin.PlannerConfig{})
	b := skewjoin.Recommend(uniform, skewjoin.PlannerConfig{})
	fmt.Printf("skewed:  %s / %s (detected=%v)\n", a.CPU, a.GPU, a.SkewDetected)
	fmt.Printf("uniform: %s / %s (detected=%v)\n", b.CPU, b.GPU, b.SkewDetected)
	// Output:
	// skewed:  csh / gsh (detected=true)
	// uniform: cbase / gbase (detected=false)
}

// A volcano-style consumer receives every output batch; here it counts
// rows, matching the result's Matches exactly.
func ExampleOptions_consumer() {
	r, s, _ := skewjoin.GenerateZipfPair(10000, 0.8, 3)
	counts := make([]uint64, 64)
	res, _ := skewjoin.Join(skewjoin.Cbase, r, s, &skewjoin.Options{
		Threads: 2,
		Consumer: func(worker int) skewjoin.ResultConsumer {
			return func(batch []skewjoin.JoinResult) {
				counts[worker] += uint64(len(batch))
			}
		},
	})
	var total uint64
	for _, c := range counts {
		total += c
	}
	fmt.Println("consumer saw every result:", total == res.Matches)
	// Output:
	// consumer saw every result: true
}

// Relations round-trip through the binary file format.
func ExampleStats() {
	r := skewjoin.NewRelation(
		[]skewjoin.Key{7, 7, 7, 9},
		[]skewjoin.Payload{0, 1, 2, 3},
	)
	st := skewjoin.Stats(r)
	fmt.Printf("%d tuples, %d keys, top key %d x%d\n",
		st.Tuples, st.DistinctKeys, st.MaxKey, st.MaxKeyFreq)
	// Output:
	// 4 tuples, 2 keys, top key 7 x3
}
