package skewjoin

import (
	"context"
	"testing"
	"time"
)

// TestStreamGoldenMatchesBlocking pins the tentpole invariant: the
// streaming symmetric join's complete (no-limit) output digest equals the
// blocking baseline's on a sweep of skew levels.
func TestStreamGoldenMatchesBlocking(t *testing.T) {
	for _, theta := range []float64{0, 0.4, 0.9, 1.1} {
		r, s, err := GenerateZipfPair(20000, theta, 42)
		if err != nil {
			t.Fatal(err)
		}
		blocking, err := Join(Cbase, r, s, &Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		streaming, err := Join(SSJ, r, s, &Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if streaming.Summary() != blocking.Summary() {
			t.Errorf("theta=%v: streaming %+v != blocking %+v", theta, streaming.Summary(), blocking.Summary())
		}
		if streaming.Summary() != Expected(r, s) {
			t.Errorf("theta=%v: streaming digest does not match oracle", theta)
		}
		if streaming.Stream == nil || streaming.Stream.LimitHit {
			t.Errorf("theta=%v: malformed stream stats: %+v", theta, streaming.Stream)
		}
		if streaming.Matches > 0 && streaming.Stream.FirstResultNs == 0 {
			t.Errorf("theta=%v: missing first-result milestone", theta)
		}
	}
}

// TestStreamLimit checks SSJ early termination through the root API:
// success (not error), LimitHit set, staged bounded, milestones ordered.
func TestStreamLimit(t *testing.T) {
	r, s, err := GenerateZipfPair(30000, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	full := Expected(r, s)
	for _, limit := range []int{1, 500, 10000} {
		res, err := Join(SSJ, r, s, &Options{Threads: 2, Limit: limit})
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		st := res.Stream
		if st == nil || !st.LimitHit {
			t.Fatalf("limit=%d (output %d): stream stats %+v", limit, full.Matches, st)
		}
		if st.Staged < uint64(limit) || res.Matches != st.Staged {
			t.Fatalf("limit=%d: staged %d, matches %d", limit, st.Staged, res.Matches)
		}
		if st.LimitNs == 0 || st.FirstResultNs == 0 || st.LimitNs < st.FirstResultNs {
			t.Fatalf("limit=%d: milestones %+v", limit, st)
		}
	}
}

// TestBlockingLimit checks the limiter path layered onto the blocking
// CPU algorithms: a limited run returns successfully with LimitHit and
// at least Limit staged results.
func TestBlockingLimit(t *testing.T) {
	r, s, err := GenerateZipfPair(30000, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Cbase, CbaseNPJ, CSH, SMJ} {
		res, err := Join(alg, r, s, &Options{Threads: 2, Limit: 100})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		st := res.Stream
		if st == nil || !st.LimitHit || st.Staged < 100 {
			t.Fatalf("%s: stream stats %+v", alg, st)
		}
		if st.LimitNs == 0 || st.FirstResultNs == 0 {
			t.Fatalf("%s: milestones missing: %+v", alg, st)
		}
	}
	// Without a limit the blocking algorithms carry no stream stats.
	res, err := Join(Cbase, r, s, &Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stream != nil {
		t.Fatalf("no-limit blocking run carries stream stats: %+v", res.Stream)
	}
}

// TestBlockingLimitAboveOutput checks a limit the join never reaches
// runs to completion with the full digest and no LimitHit.
func TestBlockingLimitAboveOutput(t *testing.T) {
	r, s, err := GenerateZipfPair(5000, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := Expected(r, s)
	for _, alg := range []Algorithm{Cbase, SSJ} {
		res, err := Join(alg, r, s, &Options{Threads: 2, Limit: int(want.Matches) * 10})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Summary() != want {
			t.Fatalf("%s: summary %+v, want %+v", alg, res.Summary(), want)
		}
		if res.Stream == nil || res.Stream.LimitHit {
			t.Fatalf("%s: stream stats %+v", alg, res.Stream)
		}
	}
}

// TestLimitRejectedOnGPU pins the validation: modelled backends cannot
// early-terminate.
func TestLimitRejectedOnGPU(t *testing.T) {
	r, s, err := GenerateZipfPair(1000, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{Gbase, GSH, GSMJ, Split} {
		if _, err := Join(alg, r, s, &Options{Limit: 10}); err == nil {
			t.Errorf("%s accepted a limit", alg)
		}
	}
}

// TestStreamLimitCancelDifferential is the streaming cancel test: a
// victim run with a tiny limit must terminate far sooner than the same
// join run to completion, and a bystander run sharing no context must be
// unaffected. Run under -race in CI, it also exercises the limit-cancel
// broadcast across workers.
func TestStreamLimitCancelDifferential(t *testing.T) {
	r, s, err := GenerateZipfPair(60000, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	fullStart := time.Now()
	bystander, err := Join(SSJ, r, s, &Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(fullStart)

	victimStart := time.Now()
	victim, err := Join(SSJ, r, s, &Options{Threads: 4, Limit: 64})
	if err != nil {
		t.Fatal(err)
	}
	victimDur := time.Since(victimStart)

	if bystander.Summary() != Expected(r, s) {
		t.Fatal("bystander full run corrupted")
	}
	if !victim.Stream.LimitHit {
		t.Fatalf("victim did not hit its limit: %+v", victim.Stream)
	}
	// Promptness: all workers observed the cancel within bounded extra
	// work. The staged overshoot is at most one chunk's cross product
	// per worker; far below the full output.
	if victim.Stream.Staged >= bystander.Matches/2 {
		t.Fatalf("victim staged %d of %d total results — cancellation not prompt", victim.Stream.Staged, bystander.Matches)
	}
	// The time bound is generous (CI noise) but still differential: the
	// limited run must not pay anything close to the full makespan.
	if fullDur > 50*time.Millisecond && victimDur > fullDur {
		t.Fatalf("victim took %v, full run %v — early termination saved nothing", victimDur, fullDur)
	}
}

// TestStreamUserCancelStillErrors pins that a caller cancellation (not a
// limit) surfaces as an error even on the streaming operator.
func TestStreamUserCancelStillErrors(t *testing.T) {
	r, s, err := GenerateZipfPair(1000, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Join(SSJ, r, s, &Options{Context: ctx, Limit: 10}); err == nil {
		t.Fatal("pre-cancelled streaming run returned no error")
	}
}

// TestPlannerStreamingRule pins the auto-selection rule: full scans stay
// blocking; small limits stream; large limits stream only when the
// cached heavy hitters satisfy them early.
func TestPlannerStreamingRule(t *testing.T) {
	uniform := RelationStats{Tuples: 100000, DistinctKeys: 100000, MaxKeyFreq: 1}
	skewed := RelationStats{
		Tuples: 100000, DistinctKeys: 5000, MaxKeyFreq: 20000,
		TopKeys: []KeyFreq{{Key: 7, Freq: 20000}, {Key: 9, Freq: 4000}},
	}
	cases := []struct {
		name  string
		st    RelationStats
		limit int
		want  bool
	}{
		{"full scan stays blocking", skewed, 0, false},
		{"small limit streams", uniform, 100, true},
		{"limit at 1/8 of input streams", uniform, 12500, true},
		{"large limit on uniform stays blocking", uniform, 50000, false},
		{"large limit on skew streams (hot keys satisfy it)", skewed, 50000, true},
	}
	for _, tc := range cases {
		rec := RecommendFromStats(tc.st, PlannerConfig{Limit: tc.limit})
		if rec.Streaming != tc.want {
			t.Errorf("%s: Streaming = %v, want %v", tc.name, rec.Streaming, tc.want)
		}
	}

	// Recommend (sampling path) applies the same rule from its top-key
	// estimate.
	r, _, err := GenerateZipfPair(50000, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if rec := Recommend(r, PlannerConfig{Limit: 100}); !rec.Streaming {
		t.Error("Recommend: small limit did not stream")
	}
	if rec := Recommend(r, PlannerConfig{}); rec.Streaming {
		t.Error("Recommend: full scan streamed")
	}
}
