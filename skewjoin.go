// Package skewjoin is a from-scratch Go reproduction of "CPU and GPU Hash
// Joins on Skewed Data" (Cai & Chen, ICDE 2024).
//
// It provides five main-memory equi-join implementations over (4-byte key,
// 4-byte payload) tuples:
//
//   - CSH — the paper's CPU Skew-conscious Hash join: skew detection by
//     sampling before partitioning, a hybrid partition phase that joins
//     skewed S tuples on the fly, and a normal radix join for the rest;
//   - Cbase — the baseline parallel radix join (Balkesen et al.);
//   - CbaseNPJ — the baseline no-partition hash join;
//   - GSH — the paper's GPU Skew-conscious Hash join: post-partition skew
//     detection, large-partition division, NM-join plus a massively
//     parallel skew-join phase — running on a deterministic GPU cost
//     simulator (see internal/gpusim and DESIGN.md);
//   - Gbase — the baseline GPU radix join (Sioulas et al.) on the same
//     simulator.
//
// A parallel sort-merge join (SMJ) is included as an extension beyond the
// paper's evaluated set, along with an adaptive planner (Recommend,
// EstimateOutput) and volcano-style result consumers (Options.Consumer).
//
// CPU algorithms report wall-clock phase times; GPU algorithms report
// modelled device time (Result.Modelled is true). All implementations
// produce the same verifiable output summary for the same inputs.
//
// Quick start:
//
//	r, s, _ := skewjoin.GenerateZipfPair(1<<20, 0.9, 42)
//	res, _ := skewjoin.Join(skewjoin.CSH, r, s, nil)
//	fmt.Println(res.Matches, res.Total)
package skewjoin

import (
	"context"
	"fmt"
	"time"

	"skewjoin/internal/cbase"
	"skewjoin/internal/chainedtable"
	"skewjoin/internal/csh"
	"skewjoin/internal/exec"
	"skewjoin/internal/gbase"
	"skewjoin/internal/gpusim"
	"skewjoin/internal/gsh"
	"skewjoin/internal/gsmj"
	"skewjoin/internal/joinphase"
	"skewjoin/internal/npj"
	"skewjoin/internal/oracle"
	"skewjoin/internal/outbuf"
	"skewjoin/internal/radix"
	"skewjoin/internal/relation"
	"skewjoin/internal/smj"
	"skewjoin/internal/ssj"
	"skewjoin/internal/zipf"
)

// Re-exported data model. The aliases make the internal types usable by
// importers of this package.
type (
	// Key is a 4-byte join key.
	Key = relation.Key
	// Payload is a 4-byte payload column value.
	Payload = relation.Payload
	// Tuple is an 8-byte (key, payload) pair.
	Tuple = relation.Tuple
	// Relation is an in-memory table of tuples.
	Relation = relation.Relation
	// DeviceConfig configures the simulated GPU for Gbase and GSH.
	DeviceConfig = gpusim.Config
	// ScatterMode selects the CPU partitioner's scatter strategy.
	ScatterMode = radix.ScatterMode
	// SchedMode selects the CPU dynamic-task-queue implementation.
	SchedMode = radix.SchedMode
	// ProbeMode selects the CPU join phase's probe strategy.
	ProbeMode = chainedtable.ProbeMode
	// Layout selects the CPU join phase's build-table layout.
	Layout = chainedtable.Layout
)

// Partition scatter strategies (Options.Scatter). All strategies produce
// bit-for-bit identical partitions; the knob exists for benchmarking.
const (
	// ScatterAuto picks write-combining at high pass fanouts, direct
	// otherwise (the default).
	ScatterAuto = radix.ScatterAuto
	// ScatterDirect always writes tuples straight to their partitions.
	ScatterDirect = radix.ScatterDirect
	// ScatterWC always stages tuples in software write-combining buffers.
	ScatterWC = radix.ScatterWC
)

// Task-queue implementations (Options.Sched).
const (
	// SchedAtomic is the lock-free fetch-add task queue (the default).
	SchedAtomic = radix.SchedAtomic
	// SchedMutex is the fully mutex-guarded baseline queue.
	SchedMutex = radix.SchedMutex
)

// Probe strategies (Options.Probe). Both produce identical output; the knob
// exists for benchmarking.
const (
	// ProbeScalar probes one S tuple at a time (the default).
	ProbeScalar = chainedtable.ProbeScalar
	// ProbeGrouped advances up to 64 chain walks in lock-step so their
	// dependent loads overlap.
	ProbeGrouped = chainedtable.ProbeGrouped
)

// Build-table layouts (Options.Layout). Both produce identical output.
const (
	// LayoutChained is the paper's index-linked bucket-chained table (the
	// default).
	LayoutChained = chainedtable.LayoutChained
	// LayoutCompact stores each bucket's entries contiguously, trading an
	// extra build pass for sequential probe scans.
	LayoutCompact = chainedtable.LayoutCompact
)

// Algorithm selects a join implementation.
type Algorithm string

// The five algorithms the paper evaluates.
const (
	Cbase    Algorithm = "cbase"     // baseline CPU parallel radix join
	CbaseNPJ Algorithm = "cbase-npj" // baseline CPU no-partition join
	CSH      Algorithm = "csh"       // CPU skew-conscious hash join (paper contribution)
	Gbase    Algorithm = "gbase"     // baseline GPU radix join (simulated device)
	GSH      Algorithm = "gsh"       // GPU skew-conscious hash join (paper contribution)
)

// SMJ is a parallel sort-merge join — an extension beyond the paper's
// evaluated set, included as the classic alternative in the sort-vs-hash
// debate the paper cites. Its sort phase is skew-independent and its merge
// phase emits equal-key cross products with sequential accesses.
const SMJ Algorithm = "smj"

// GSMJ is the GPU sort-merge join (simulated device) — the sort-vs-hash
// extension on the GPU side, with oversized equal-key runs tiled across
// thread blocks.
const GSMJ Algorithm = "gsmj"

// Algorithms lists the paper's five evaluated implementations in
// presentation order.
func Algorithms() []Algorithm { return []Algorithm{Cbase, CbaseNPJ, CSH, Gbase, GSH} }

// ExtendedAlgorithms lists every implementation, including the extensions
// beyond the paper's evaluated set.
func ExtendedAlgorithms() []Algorithm { return append(Algorithms(), SMJ, GSMJ, SSJ) }

// IsGPU reports whether the algorithm runs on the simulated GPU (its times
// are modelled rather than wall-clock).
func (a Algorithm) IsGPU() bool { return a == Gbase || a == GSH || a == GSMJ }

// Options tunes a join run. The zero value (or nil pointer) uses the
// paper's example parameters everywhere.
type Options struct {
	// Threads is the CPU worker count for Cbase, CbaseNPJ and CSH
	// (default: GOMAXPROCS; the paper used 20).
	Threads int
	// Bits1/Bits2 are the CPU radix partitioning bits per pass.
	Bits1, Bits2 uint32
	// SampleRate is the skew-detection sample fraction for CSH and GSH
	// (default 0.01).
	SampleRate float64
	// SkewThreshold is CSH's sampled-frequency cutoff (default 2).
	SkewThreshold uint32
	// TopK is GSH's per-large-partition skewed key count (default 3).
	TopK int
	// Device configures the simulated GPU (zero fields = A100).
	Device DeviceConfig
	// HostParallelism sets the host worker-pool size for executing the
	// simulated GPU's thread blocks (Gbase, GSH, GSMJ). It overrides
	// Device.HostParallelism when non-zero: N>0 runs launches on N host
	// workers, negative forces the serial seed path. Parallel execution is
	// bit-identical to serial — same output, stats and modelled times —
	// and changes only the wall-clock cost of simulation.
	HostParallelism int
	// OutBufCap overrides the per-worker output ring capacity.
	OutBufCap int
	// Limit stops the run once at least this many results have been
	// staged for the consumer (0 = run to completion). The SSJ streaming
	// operator observes it at chunk granularity; the blocking CPU
	// algorithms (Cbase, CbaseNPJ, CSH, SMJ) observe it at their usual
	// cancellation boundaries, so they overshoot far more — the gap the
	// stream benchmark measures. A limit-terminated run returns
	// successfully with Result.Stream.LimitHit set and a partial output
	// digest of at least Limit results. The GPU algorithms and Split
	// reject a limit (their output totals are modelled, not streamed).
	Limit int
	// Consumer optionally attaches a volcano-style upper operator: for
	// each worker (CPU thread or simulated SM) the factory returns a
	// callback that receives every full output-ring batch, plus the final
	// partial batch before Join returns. Batches are ring-backed and must
	// not be retained. The factory itself is called sequentially.
	Consumer func(worker int) ResultConsumer
	// Scatter selects the CPU partitioner's scatter strategy for Cbase and
	// CSH (default ScatterAuto). Output is identical across strategies.
	Scatter ScatterMode
	// Sched selects the CPU dynamic-task-queue implementation for Cbase
	// and CSH (default SchedAtomic).
	Sched SchedMode
	// Probe selects the CPU join phase's probe strategy for Cbase, CSH and
	// CbaseNPJ (default ProbeScalar). Output is identical across modes.
	Probe ProbeMode
	// Layout selects the CPU join phase's build-table layout for Cbase and
	// CSH (default LayoutChained). Output is identical across layouts.
	Layout Layout
	// Context optionally bounds the run: when it is cancelled or its
	// deadline passes, Join returns ctx.Err() instead of a result. For
	// Cbase and CSH cancellation is honoured at phase boundaries and
	// between join tasks, so a run stops burning workers within one task's
	// latency; the other algorithms check it only between phases. A nil
	// Context never cancels.
	Context context.Context
	// Backend optionally selects the execution backend at the dispatch
	// level ("cpu", "gpu" or "split"); the service and CLI layers use it
	// with algorithm "auto". Join itself dispatches on the Algorithm
	// argument — use the Split algorithm for co-processing.
	Backend Backend
	// SplitPolicy selects the Split mode's placement policy (default
	// SplitPolicyModel, the cost-model placement; SplitPolicyCPU/GPU pin
	// every partition to one side — the benchmark's control rows).
	SplitPolicy SplitPolicy
	// Calibration optionally supplies pre-fitted CPU cost-model constants
	// for the Split mode; nil calibrates with a micro-run per join (the
	// service layer caches a calibration in its catalog instead).
	Calibration *Calibration
	// Fragments is the Split mode's fragmentation granularity: when the
	// cost model finds the hot partition dominating the makespan, its
	// probe side is cut into this many cost-proportional sub-ranges and
	// split across both backends with the build side replicated (default
	// 8, minimum 2; negative disables fragmentation so the radix
	// partition stays the atomic placement unit).
	Fragments int
	// SplitMinWinNs / SplitWinFraction override the Split mode's
	// degeneration thresholds: a split must be predicted to beat the
	// better single backend by max(SplitMinWinNs,
	// SplitWinFraction·better) or it degenerates (defaults 25ms / 0.10;
	// zero keeps the default — the benchmarks lower the floor to exercise
	// split paths at smoke-test sizes).
	SplitMinWinNs    int64
	SplitWinFraction float64
}

// JoinResult is one join output tuple as delivered to consumers.
type JoinResult = outbuf.Result

// ResultConsumer receives batches of join results (the upper operator of
// the paper's volcano consumption model).
type ResultConsumer = outbuf.FlushFunc

// Phase is one named, timed section of a join run.
type Phase struct {
	Name     string
	Duration time.Duration
}

// JoinPhaseStats reports the internals of a CPU join (or probe) phase:
// task counts, skew symptoms, and the build/probe CPU-time split summed
// across workers (so the sums can exceed the phase's wall-clock on
// multi-threaded runs).
type JoinPhaseStats struct {
	// Tasks is the number of join tasks drained, including probe
	// sub-tasks created by splitting (0 for CbaseNPJ, which has no tasks).
	Tasks int
	// SplitTasks is the number of oversized tasks broken up.
	SplitTasks int
	// MaxChain is the longest hash chain (largest bucket) built.
	MaxChain int
	// ProbeVisits is the total bucket entries inspected while probing.
	ProbeVisits uint64
	// BuildNs is CPU time spent building hash tables, in nanoseconds.
	BuildNs int64
	// ProbeNs is CPU time spent probing, in nanoseconds.
	ProbeNs int64
}

// Result is the outcome of a join run.
type Result struct {
	Algorithm Algorithm
	// Matches is the exact output cardinality.
	Matches uint64
	// Checksum is the order-independent output checksum; compare against
	// Expected to verify a run.
	Checksum uint64
	// Phases is the per-phase time breakdown (wall-clock for CPU
	// algorithms, modelled device time for GPU algorithms).
	Phases []Phase
	// Total is the sum of the phases.
	Total time.Duration
	// Modelled is true when times come from the GPU cost simulator.
	Modelled bool
	// JoinPhase holds join-phase internals for the CPU hash joins (Cbase,
	// CSH — where it covers the NM-join — and CbaseNPJ); for Split it
	// covers the CPU side of the co-processed join. Nil for the GPU
	// algorithms and SMJ.
	JoinPhase *JoinPhaseStats
	// Split reports the placement, per-backend times and imbalance of a
	// Split (co-processing) run; nil for every other algorithm. Its CPU
	// times are host times while its GPU times are modelled device time
	// (Modelled stays false — the result's own Phases mix both clocks, as
	// documented on SplitStats).
	Split *SplitStats
	// Stream reports incremental-delivery milestones: time to first
	// result, time to limit, and whether Options.Limit terminated the
	// run. Always set for SSJ; set for the blocking CPU algorithms when
	// a limit was requested; nil otherwise.
	Stream *StreamStats
}

// Summary is a verifiable output digest: cardinality plus checksum.
type Summary struct {
	Matches  uint64
	Checksum uint64
}

// Summary returns the result's output digest.
func (r Result) Summary() Summary { return Summary{Matches: r.Matches, Checksum: r.Checksum} }

// Phase returns the duration recorded under name (0 if absent).
func (r Result) Phase(name string) time.Duration {
	var sum time.Duration
	for _, p := range r.Phases {
		if p.Name == name {
			sum += p.Duration
		}
	}
	return sum
}

// Join runs the selected algorithm over r and s. opts may be nil. When
// opts.Context is cancelled before the run completes, Join discards the
// partial output and returns the context's error.
func Join(alg Algorithm, r, s Relation, opts *Options) (Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	ctx := opts.Context
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if opts.Limit > 0 && (alg.IsGPU() || alg == Split) {
		return Result{}, fmt.Errorf("skewjoin: algorithm %q cannot early-terminate: limit requires a CPU operator (the GPU totals are modelled, not streamed)", alg)
	}
	limit := uint64(0)
	if opts.Limit > 0 {
		limit = uint64(opts.Limit)
	}
	switch alg {
	case Cbase:
		lim, runCtx, flush, cancel := newLimiter(limit, ctx, opts.Consumer)
		defer cancel()
		res := cbase.Join(r, s, cbase.Config{
			Threads: opts.Threads, Bits1: opts.Bits1, Bits2: opts.Bits2,
			OutBufCap: limitBufCap(opts.OutBufCap, limit), Flush: flush,
			Scatter: opts.Scatter, Sched: opts.Sched,
			Probe: opts.Probe, Layout: opts.Layout, Ctx: runCtx,
		})
		if res.Canceled && !lim.hit() {
			return Result{}, ctxErr(ctx)
		}
		out := wrap(alg, res.Summary, phases(res.Phases), false)
		out.JoinPhase = joinPhaseStats(res.Stats.Join)
		lim.annotate(&out)
		return out, nil
	case CbaseNPJ:
		lim, runCtx, flush, cancel := newLimiter(limit, ctx, opts.Consumer)
		defer cancel()
		res := npj.Join(r, s, npj.Config{
			Threads: opts.Threads, Probe: opts.Probe,
			OutBufCap: limitBufCap(opts.OutBufCap, limit), Flush: flush,
			Ctx: runCtx,
		})
		if res.Canceled && !lim.hit() {
			return Result{}, ctxErr(ctx)
		}
		out := wrap(alg, res.Summary, phases(res.Phases), false)
		out.JoinPhase = &JoinPhaseStats{ProbeVisits: res.Stats.ProbeVisits}
		lim.annotate(&out)
		return out, nil
	case CSH:
		lim, runCtx, flush, cancel := newLimiter(limit, ctx, opts.Consumer)
		defer cancel()
		res := csh.Join(r, s, csh.Config{
			Threads: opts.Threads, Bits1: opts.Bits1, Bits2: opts.Bits2,
			SampleRate: opts.SampleRate, SkewThreshold: opts.SkewThreshold,
			OutBufCap: limitBufCap(opts.OutBufCap, limit), Flush: flush,
			Scatter: opts.Scatter, Sched: opts.Sched,
			Probe: opts.Probe, Layout: opts.Layout, Ctx: runCtx,
		})
		if res.Canceled && !lim.hit() {
			return Result{}, ctxErr(ctx)
		}
		out := wrap(alg, res.Summary, phases(res.Phases), false)
		out.JoinPhase = joinPhaseStats(res.Stats.NM)
		lim.annotate(&out)
		return out, nil
	case Gbase:
		res := gbase.Join(r, s, gbase.Config{Device: opts.deviceConfig(), Flush: opts.Consumer})
		if err := ctxErr(ctx); err != nil {
			return Result{}, err
		}
		return wrap(alg, res.Summary, phases(res.Phases), true), nil
	case GSH:
		res := gsh.Join(r, s, gsh.Config{
			Device: opts.deviceConfig(), SampleRate: opts.SampleRate, TopK: opts.TopK,
			Flush: opts.Consumer,
		})
		if err := ctxErr(ctx); err != nil {
			return Result{}, err
		}
		return wrap(alg, res.Summary, phases(res.Phases), true), nil
	case SMJ:
		lim, runCtx, flush, cancel := newLimiter(limit, ctx, opts.Consumer)
		defer cancel()
		res := smj.Join(r, s, smj.Config{
			Threads: opts.Threads, OutBufCap: limitBufCap(opts.OutBufCap, limit), Flush: flush,
			Ctx: runCtx,
		})
		if res.Canceled && !lim.hit() {
			return Result{}, ctxErr(ctx)
		}
		out := wrap(alg, res.Summary, phases(res.Phases), false)
		lim.annotate(&out)
		return out, nil
	case SSJ:
		res := ssj.Join(r, s, ssj.Config{
			Threads: opts.Threads, Limit: limit,
			OutBufCap: opts.OutBufCap, Flush: opts.Consumer, Ctx: ctx,
		})
		if res.Canceled {
			return Result{}, ctx.Err()
		}
		out := wrap(alg, res.Summary, phases(res.Phases), false)
		out.JoinPhase = &JoinPhaseStats{
			Tasks:       res.Stats.Chunks,
			MaxChain:    res.Stats.MaxChain,
			ProbeVisits: res.Stats.ProbeVisits,
		}
		out.Stream = streamStats(res.Stats)
		return out, nil
	case Split:
		return joinSplit(r, s, opts)
	case GSMJ:
		res := gsmj.Join(r, s, gsmj.Config{Device: opts.deviceConfig()})
		if err := ctxErr(ctx); err != nil {
			return Result{}, err
		}
		return wrap(alg, res.Summary, phases(res.Phases), true), nil
	default:
		return Result{}, fmt.Errorf("skewjoin: unknown algorithm %q", alg)
	}
}

// deviceConfig resolves the simulated-GPU configuration for a run,
// applying the Options.HostParallelism override on top of Options.Device.
func (o *Options) deviceConfig() DeviceConfig {
	d := o.Device
	switch {
	case o.HostParallelism > 0:
		d.HostParallelism = o.HostParallelism
	case o.HostParallelism < 0:
		d.HostParallelism = 0
	}
	return d
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func wrap(alg Algorithm, sum outbuf.Summary, ph []Phase, modelled bool) Result {
	res := Result{
		Algorithm: alg,
		Matches:   sum.Count,
		Checksum:  sum.Checksum,
		Phases:    ph,
		Modelled:  modelled,
	}
	for _, p := range ph {
		res.Total += p.Duration
	}
	return res
}

// joinPhaseStats converts the internal join-phase stats into the public
// mirror.
func joinPhaseStats(st joinphase.Stats) *JoinPhaseStats {
	return &JoinPhaseStats{
		Tasks:       st.Tasks,
		SplitTasks:  st.SplitTasks,
		MaxChain:    st.MaxChain,
		ProbeVisits: st.ProbeVisits,
		BuildNs:     st.BuildNs,
		ProbeNs:     st.ProbeNs,
	}
}

func phases(ps []exec.Phase) []Phase {
	out := make([]Phase, len(ps))
	for i, p := range ps {
		out[i] = Phase{Name: p.Name, Duration: p.Duration}
	}
	return out
}

// Expected computes the ground-truth output digest of joining r and s, in
// O(|R|+|S|), without materialising the output. Use it to verify any
// Result.
func Expected(r, s Relation) Summary {
	e := oracle.Expected(r, s)
	return Summary{Matches: e.Count, Checksum: e.Checksum}
}

// GenerateZipfPair builds the paper's workload: two n-tuple tables whose
// keys follow a zipf distribution with the given factor, drawn from the
// same interval and unique-key arrays (so popular keys coincide in both
// tables) but independent random streams.
func GenerateZipfPair(n int, theta float64, seed int64) (r, s Relation, err error) {
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		return Relation{}, Relation{}, err
	}
	r, s = g.Pair(n)
	return r, s, nil
}

// GenerateZipf builds a single n-tuple zipf relation. Relations built from
// the same seed and theta share their key universe, so two calls with
// different stream ids produce joinable tables.
func GenerateZipf(n int, theta float64, seed, stream int64) (Relation, error) {
	g, err := zipf.New(zipf.Config{Theta: theta, Universe: n, Seed: seed})
	if err != nil {
		return Relation{}, err
	}
	return g.NewRelation(n, stream), nil
}

// DefaultThreads returns the CPU worker count used when Options.Threads is
// zero.
func DefaultThreads() int { return exec.DefaultThreads() }
