package skewjoin

import (
	"sort"
	"testing"
)

// fragmentOptions returns Split options that let the model fragment at
// test-sized inputs: a fixed calibration (no micro-run noise), the
// coupled device, and the win floor lowered to a hair above zero so the
// 25ms default doesn't mask the decision at a few thousand tuples.
func fragmentOptions(fragments, hostpar int) Options {
	cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	return Options{
		Threads: 1, Device: CoupledDevice(), HostParallelism: hostpar,
		Calibration: &cal, Fragments: fragments,
		SplitMinWinNs: 1, SplitWinFraction: 0.01,
	}
}

// topKeyCounts reduces a record multiset to its k heaviest (count, key)
// groups — the exact top-k a grouping consumer would report.
type keyCount struct {
	key   Key
	count int
}

func topKeyCounts(recs []JoinResult, k int) []keyCount {
	counts := map[Key]int{}
	for _, r := range recs {
		counts[r.Key]++
	}
	out := make([]keyCount, 0, len(counts))
	for key, c := range counts {
		out = append(out, keyCount{key: key, count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].count != out[j].count {
			return out[i].count > out[j].count
		}
		return out[i].key < out[j].key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestFragmentDifferential is the fragment-and-replicate correctness
// oracle: across deepening skew and fragment granularities, a fragmented
// model split must emit the exact record multiset of the blocking CPU
// oracle — replicating the hot build side to both backends and splitting
// its probe side must never duplicate or drop a match — and the exact
// top-k derived from the merged output must match the oracle's. At
// zipf >= 1.2 the plan is additionally required to have fragmented, so
// the sweep can't silently pass through the whole-partition path.
func TestFragmentDifferential(t *testing.T) {
	cells := []struct {
		theta     float64
		n         int
		fragments int
		hostpar   int
	}{
		{1.0, 4096, 8, 0},
		{1.2, 4096, 2, 0},
		{1.2, 4096, 4, 0},
		{1.2, 4096, 8, 0},
		{1.2, 4096, 8, 4},
		{1.4, 2048, 2, 0},
		{1.4, 2048, 4, 0},
		{1.4, 2048, 8, 0},
		{1.4, 2048, 8, 4},
	}
	for _, c := range cells {
		if testing.Short() && c.theta == 1.0 {
			continue // -short keeps the must-fragment regime
		}
		r, s, err := GenerateZipfPair(c.n, c.theta, 42)
		if err != nil {
			t.Fatal(err)
		}
		want := Expected(r, s)
		oracle := joinRecords(t, Cbase, r, s, want, Options{Threads: 3})

		opts := fragmentOptions(c.fragments, c.hostpar)
		recs := joinRecords(t, Split, r, s, want, opts)
		if !sameRecords(recs, oracle) {
			t.Errorf("theta=%g frags=%d hostpar=%d: fragmented split records != cpu oracle",
				c.theta, c.fragments, c.hostpar)
		}
		wantTop := topKeyCounts(oracle, 5)
		gotTop := topKeyCounts(recs, 5)
		if len(wantTop) != len(gotTop) {
			t.Fatalf("theta=%g frags=%d: top-k sizes differ", c.theta, c.fragments)
		}
		for i := range wantTop {
			if wantTop[i] != gotTop[i] {
				t.Errorf("theta=%g frags=%d: top-k[%d] = %+v, oracle %+v",
					c.theta, c.fragments, i, gotTop[i], wantTop[i])
			}
		}

		// The sweep must actually exercise the fragment path where the
		// hot partition dominates.
		res, err := Join(Split, r, s, &opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Split == nil {
			t.Fatalf("theta=%g frags=%d: no split stats", c.theta, c.fragments)
		}
		if c.theta >= 1.2 {
			if !res.Split.Fragmented() {
				t.Errorf("theta=%g frags=%d: plan did not fragment: %+v",
					c.theta, c.fragments, res.Split.Plan)
			}
			if res.Split.CPUFragments == 0 || res.Split.GPUFragments == 0 {
				t.Errorf("theta=%g frags=%d: fragments on one backend only: cpu=%d gpu=%d",
					c.theta, c.fragments, res.Split.CPUFragments, res.Split.GPUFragments)
			}
		}
	}
}

// TestFragmentDisabledDegeneratesWithReason pins the satellite planner
// fix end to end: at deep skew with fragmentation switched off and the
// default win thresholds, the executed plan degenerates and names the
// hot partition as the reason.
func TestFragmentDisabledDegeneratesWithReason(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<14, 1.4, 42)
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	res, err := Join(Split, r, s, &Options{
		Threads: 1, Device: CoupledDevice(), Calibration: &cal, Fragments: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Split.Plan
	if plan.Split || plan.Fragmented() {
		t.Fatalf("fragments disabled at deep skew should degenerate: %+v", plan)
	}
	if plan.DegenerateReason != "hot-partition-dominates" {
		t.Errorf("degenerate reason %q, want hot-partition-dominates", plan.DegenerateReason)
	}

	// Same input with fragmentation back on: the plan fragments and the
	// run stays oracle-identical.
	want := Expected(r, s)
	res2, err := Join(Split, r, s, &Options{
		Threads: 1, Device: CoupledDevice(), Calibration: &cal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Summary() != want {
		t.Fatalf("fragmented run summary %+v, want %+v", res2.Summary(), want)
	}
	if !res2.Split.Fragmented() {
		t.Errorf("default options at deep skew should fragment: %+v", res2.Split.Plan)
	}
}

// TestRecommendSplitFragmentPlan covers the planner surface: a deep-skew
// recommendation carries the fragment entries, and its degenerate cousin
// (fragments disabled) carries the explicit reason string instead of
// degenerating silently.
func TestRecommendSplitFragmentPlan(t *testing.T) {
	r, s, err := GenerateZipfPair(1<<15, 1.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	cal := Calibration{BuildNsPerTuple: 10, ProbeNsPerUnit: 2.5}
	cfg := SplitConfig{
		Threads: 1, Device: CoupledDevice(), Calibration: &cal,
		MinWinNs: 1, WinFraction: 0.01,
	}
	rec := RecommendSplit(r, s, cfg)
	plan := rec.Split
	if plan == nil || !plan.Split || !plan.Fragmented() {
		t.Fatalf("deep skew should plan a fragmented split: %+v", plan)
	}
	if plan.FragmentedPart < 0 {
		t.Errorf("fragmented plan missing FragmentedPart: %+v", plan)
	}
	cpuN, gpuN := plan.FragmentCounts()
	if cpuN == 0 || gpuN == 0 {
		t.Errorf("fragment counts cpu=%d gpu=%d, want both > 0", cpuN, gpuN)
	}
	covered := 0
	for _, f := range plan.Fragments {
		if f.Part != plan.FragmentedPart || f.Hi <= f.Lo {
			t.Fatalf("bad fragment %+v", f)
		}
		covered += f.Hi - f.Lo
	}
	if covered == 0 {
		t.Error("fragments cover no probe tuples")
	}

	cfg.Fragments = -1
	rec = RecommendSplit(r, s, cfg)
	if rec.Split.Fragmented() {
		t.Fatalf("Fragments=-1 still fragmented: %+v", rec.Split)
	}
	if rec.Split.Split {
		return // whole-partition split still wins here; nothing to classify
	}
	if rec.Split.DegenerateReason == "" {
		t.Error("degenerate recommendation must carry a reason")
	}
}
